module Serial = Packet.Serial

type params = {
  packet_size : int;
  initial_window : float;
  initial_ssthresh : float;
  min_rto : float;
  max_rto : float;
  use_sack : bool;
  delayed_acks : bool;
}

let default_params =
  {
    packet_size = 1460;
    initial_window = 2.0;
    initial_ssthresh = 64.0;
    min_rto = 0.2;
    max_rto = 60.0;
    use_sack = false;
    delayed_acks = false;
  }

type t = {
  sim : Engine.Sim.t;
  p : params;
  transmit : Tcp_wire.seg -> payload:int -> unit;
  sent_times : (int, float) Hashtbl.t;  (* seq -> first send time *)
  retx_flag : (int, unit) Hashtbl.t;  (* ever retransmitted *)
  sacked : (int, unit) Hashtbl.t;  (* SACK-covered, when use_sack *)
  mutable running : bool;
  mutable snd_una : Serial.t;
  mutable snd_nxt : Serial.t;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable dupacks : int;
  mutable recover : Serial.t;  (* NewReno recovery point *)
  mutable in_recovery : bool;
  mutable srtt : float option;
  mutable rttvar : float;
  mutable rto : float;
  mutable backoff : int;
  rto_timer : Engine.Timer.t option ref;
  mutable sent : int;
  mutable retx : int;
  mutable timeouts : int;
}

let flight t = Stdlib.max 0 (Serial.diff t.snd_nxt t.snd_una)

let rto_value t = Float.min t.p.max_rto (t.rto *. float_of_int (1 lsl t.backoff))

let arm_rto t =
  match !(t.rto_timer) with
  | Some timer -> Engine.Timer.start timer ~after:(rto_value t)
  | None -> ()

let disarm_rto t =
  match !(t.rto_timer) with
  | Some timer -> Engine.Timer.stop timer
  | None -> ()

let send_segment t ~seq ~is_retx =
  let now = Engine.Sim.now t.sim in
  if is_retx then begin
    t.retx <- t.retx + 1;
    Hashtbl.replace t.retx_flag (Serial.to_int seq) ()
  end
  else begin
    Hashtbl.replace t.sent_times (Serial.to_int seq) now;
    t.sent <- t.sent + 1
  end;
  t.transmit { Tcp_wire.seq; tstamp = now; is_retx } ~payload:t.p.packet_size;
  if not (Engine.Timer.is_armed (Option.get !(t.rto_timer))) then arm_rto t

(* Send as much new data as the window allows (the application is
   greedy). *)
let fill_window t =
  if t.running then begin
    let allowance () =
      int_of_float t.cwnd - flight t
    in
    while allowance () > 0 do
      let seq = t.snd_nxt in
      t.snd_nxt <- Serial.succ t.snd_nxt;
      send_segment t ~seq ~is_retx:false
    done
  end

let sample_rtt t ~tstamp_echo ~echo_is_retx ~acked_was_retx =
  (* Karn's rule: never time a segment that was retransmitted. *)
  if not (echo_is_retx || acked_was_retx) then begin
    let sample = Engine.Sim.now t.sim -. tstamp_echo in
    if sample > 0.0 then begin
      (match t.srtt with
      | None ->
          t.srtt <- Some sample;
          t.rttvar <- sample /. 2.0
      | Some srtt ->
          let err = sample -. srtt in
          t.srtt <- Some (srtt +. (0.125 *. err));
          t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs err));
      let srtt = Option.get t.srtt in
      t.rto <-
        Float.max t.p.min_rto
          (Float.min t.p.max_rto (srtt +. (4.0 *. t.rttvar)))
    end
  end

let enter_fast_recovery t =
  let fl = float_of_int (flight t) in
  t.ssthresh <- Float.max 2.0 (fl /. 2.0);
  t.cwnd <- t.ssthresh +. 3.0;
  t.in_recovery <- true;
  t.recover <- t.snd_nxt;
  send_segment t ~seq:t.snd_una ~is_retx:true

let on_timeout t =
  t.timeouts <- t.timeouts + 1;
  t.ssthresh <- Float.max 2.0 (float_of_int (flight t) /. 2.0);
  t.cwnd <- 1.0;
  t.dupacks <- 0;
  t.in_recovery <- false;
  t.backoff <- Stdlib.min 6 (t.backoff + 1);
  if t.running && Serial.( < ) t.snd_una t.snd_nxt then begin
    send_segment t ~seq:t.snd_una ~is_retx:true;
    arm_rto t
  end

let create ~sim p ~transmit () =
  let t =
    {
      sim;
      p;
      transmit;
      sent_times = Hashtbl.create 256;
      retx_flag = Hashtbl.create 64;
      sacked = Hashtbl.create 64;
      running = false;
      snd_una = Serial.zero;
      snd_nxt = Serial.zero;
      cwnd = p.initial_window;
      ssthresh = p.initial_ssthresh;
      dupacks = 0;
      recover = Serial.zero;
      in_recovery = false;
      srtt = None;
      rttvar = 0.0;
      rto = 1.0;
      backoff = 0;
      rto_timer = ref None;
      sent = 0;
      retx = 0;
      timeouts = 0;
    }
  in
  t.rto_timer := Some (Engine.Timer.create sim ~on_expire:(fun () -> on_timeout t));
  t

let start t =
  if not t.running then begin
    t.running <- true;
    fill_window t
  end

let stop t =
  t.running <- false;
  disarm_rto t

(* First unsacked hole above una — the NewReno partial-ack retransmit
   target, refined by SACK information when enabled. *)
let next_hole t =
  if not t.p.use_sack then t.snd_una
  else begin
    let rec scan s =
      if Serial.( >= ) s t.snd_nxt then t.snd_una
      else if Hashtbl.mem t.sacked (Serial.to_int s) then scan (Serial.succ s)
      else s
    in
    scan t.snd_una
  end

let on_ack t (ack : Tcp_wire.ack) =
  if t.p.use_sack then
    List.iter
      (fun (b : Sack.Blocks.t) ->
        List.iter
          (fun s -> Hashtbl.replace t.sacked (Serial.to_int s) ())
          (Serial.range b.block_start b.block_end))
      ack.blocks;
  if Serial.( > ) ack.cum_ack t.snd_una then begin
    (* New data acknowledged. *)
    let acked_first = t.snd_una in
    let acked_was_retx =
      Hashtbl.mem t.retx_flag (Serial.to_int acked_first)
    in
    List.iter
      (fun s ->
        Hashtbl.remove t.sent_times (Serial.to_int s);
        Hashtbl.remove t.retx_flag (Serial.to_int s);
        Hashtbl.remove t.sacked (Serial.to_int s))
      (Serial.range t.snd_una ack.cum_ack);
    t.snd_una <- ack.cum_ack;
    t.backoff <- 0;
    sample_rtt t ~tstamp_echo:ack.tstamp_echo ~echo_is_retx:ack.echo_is_retx
      ~acked_was_retx;
    if t.in_recovery then begin
      if Serial.( >= ) ack.cum_ack t.recover then begin
        (* Full ack: leave recovery, deflate. *)
        t.in_recovery <- false;
        t.cwnd <- t.ssthresh;
        t.dupacks <- 0
      end
      else begin
        (* Partial ack: retransmit the next hole, stay in recovery. *)
        send_segment t ~seq:(next_hole t) ~is_retx:true;
        t.cwnd <- Float.max 1.0 (t.cwnd -. 1.0)
      end
    end
    else begin
      t.dupacks <- 0;
      if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.0
      else t.cwnd <- t.cwnd +. (1.0 /. t.cwnd)
    end;
    if Serial.( < ) t.snd_una t.snd_nxt then arm_rto t else disarm_rto t;
    fill_window t
  end
  else if Serial.equal ack.cum_ack t.snd_una && Serial.( < ) t.snd_una t.snd_nxt
  then begin
    (* Duplicate ack. *)
    if t.in_recovery then begin
      t.cwnd <- t.cwnd +. 1.0;
      fill_window t
    end
    else begin
      t.dupacks <- t.dupacks + 1;
      if t.dupacks = 3 then enter_fast_recovery t
    end
  end

let cwnd t = t.cwnd
let ssthresh t = t.ssthresh
let srtt t = t.srtt
let rto t = rto_value t
let in_fast_recovery t = t.in_recovery
let segments_sent t = t.sent
let retransmits t = t.retx
let timeouts t = t.timeouts
