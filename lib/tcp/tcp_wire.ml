type seg = {
  seq : Packet.Serial.t;
  tstamp : float;
  is_retx : bool;
}

type ack = {
  cum_ack : Packet.Serial.t;
  blocks : Sack.Blocks.t list;
  tstamp_echo : float;
  echo_is_retx : bool;
}

type Netsim.Frame.body += Seg of seg | Ack of ack

let seg_size ~payload = 40 + payload

let ack_size ~blocks = 40 + (if blocks > 0 then 2 + (8 * blocks) else 0)
