(** TCP receiver: cumulative ACKs (optionally with SACK blocks), with
    optional RFC 1122 delayed ACKs (ack every second in-order segment or
    after 200 ms, immediate on out-of-order), built on
    {!Sack.Rcv_tracker}. *)

type t

val create :
  ?use_sack:bool ->
  ?delayed_acks:Engine.Sim.t ->
  send_ack:(Tcp_wire.ack -> size:int -> unit) ->
  unit ->
  t
(** [delayed_acks] enables delack, using the given simulation for the
    200 ms timer. *)

val on_segment : t -> Tcp_wire.seg -> unit

val cum_ack : t -> Packet.Serial.t
(** Next expected segment = segments delivered in order so far. *)

val segments_received : t -> int
val duplicates : t -> int
val acks_sent : t -> int
