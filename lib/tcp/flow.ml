type t = {
  sim : Engine.Sim.t;
  flow_id : int;
  sender : Tcp_sender.t;
  receiver : Tcp_receiver.t;
  goodput : Stats.Series.t;
}

(* Domain-local (not shared) so parallel simulations never race; a
   frame uid only needs to be unique within its own simulation. *)
let next_uid = Domain.DLS.new_key (fun () -> ref 0)

let uid () =
  let c = Domain.DLS.get next_uid in
  incr c;
  !c

let create ~sim ~endpoint ?(params = Tcp_sender.default_params)
    ?(start_at = 0.0) () =
  let flow_id = endpoint.Netsim.Topology.flow_id in
  let goodput = Stats.Series.create () in
  (* Receiver side: deliver segments, emit ACK frames on the reverse
     path, and log in-order progress as goodput. *)
  let last_cum = ref Packet.Serial.zero in
  let send_ack ack ~size =
    let frame =
      Netsim.Frame.make ~uid:(uid ()) ~flow_id ~size
        ~born:(Engine.Sim.now sim) (Tcp_wire.Ack ack)
    in
    endpoint.Netsim.Topology.to_sender frame
  in
  let receiver =
    Tcp_receiver.create ~use_sack:params.use_sack
      ?delayed_acks:(if params.delayed_acks then Some sim else None)
      ~send_ack ()
  in
  let trace = Trace.Sink.of_sim sim ~flow:flow_id in
  let trace = Some trace in
  (* Sender side: emit data frames on the forward path. *)
  let transmit seg ~payload =
    Trace.Sink.tcp_send trace ~seq:seg.Tcp_wire.seq
      ~retx:seg.Tcp_wire.is_retx;
    let frame =
      Netsim.Frame.make ~uid:(uid ()) ~flow_id
        ~size:(Tcp_wire.seg_size ~payload)
        ~born:(Engine.Sim.now sim) (Tcp_wire.Seg seg)
    in
    endpoint.Netsim.Topology.to_receiver frame
  in
  let sender = Tcp_sender.create ~sim params ~transmit () in
  (* Delivery plumbing. *)
  endpoint.Netsim.Topology.on_receiver_rx (fun frame ->
      match frame.Netsim.Frame.body with
      | Tcp_wire.Seg seg ->
          Tcp_receiver.on_segment receiver seg;
          let cum = Tcp_receiver.cum_ack receiver in
          let advance = Packet.Serial.diff cum !last_cum in
          if advance > 0 then begin
            Stats.Series.record goodput ~time:(Engine.Sim.now sim)
              ~bytes:(advance * params.packet_size);
            last_cum := cum
          end
      | _ -> ());
  endpoint.Netsim.Topology.on_sender_rx (fun frame ->
      match frame.Netsim.Frame.body with
      | Tcp_wire.Ack ack ->
          Tcp_sender.on_ack sender ack;
          Trace.Sink.tcp_ack trace ~cum_ack:ack.Tcp_wire.cum_ack
            ~cwnd:(Tcp_sender.cwnd sender)
            ~ssthresh:(Tcp_sender.ssthresh sender)
      | _ -> ());
  ignore
    (Engine.Sim.schedule_at sim start_at (fun () -> Tcp_sender.start sender));
  { sim; flow_id; sender; receiver; goodput }

let sender t = t.sender
let receiver t = t.receiver
let goodput_series t = t.goodput

let goodput_bps t ~from_ ~until =
  Stats.Series.rate_bps t.goodput ~from_ ~until

let flow_id t = t.flow_id
