(** A complete TCP connection wired onto a {!Netsim.Topology.endpoint}.

    The flow owns both ends, converts segments/ACKs to simulator frames,
    and records the receiver's in-order (goodput) byte arrivals into a
    {!Stats.Series} for analysis. *)

type t

val create :
  sim:Engine.Sim.t ->
  endpoint:Netsim.Topology.endpoint ->
  ?params:Tcp_sender.params ->
  ?start_at:float ->
  unit ->
  t
(** Builds and (at [start_at], default 0) starts a greedy transfer. *)

val sender : t -> Tcp_sender.t
val receiver : t -> Tcp_receiver.t

val goodput_series : t -> Stats.Series.t
(** In-order delivered bytes at the receiver (time-stamped). *)

val goodput_bps : t -> from_:float -> until:float -> float

val flow_id : t -> int
