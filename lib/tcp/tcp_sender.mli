(** TCP NewReno sender (RFC 5681/6582 behaviour at packet granularity).

    Slow start, congestion avoidance, fast retransmit on three duplicate
    ACKs, NewReno fast recovery with partial-ACK retransmissions, and a
    Jacobson/Karn retransmission timer with exponential backoff.  The
    congestion window is counted in segments, as in packet-level
    simulators; the application is greedy (always has data) unless a
    rate cap is configured. *)

type params = {
  packet_size : int;  (** payload bytes per segment *)
  initial_window : float;  (** segments; RFC 3390 allows up to 4 *)
  initial_ssthresh : float;
  min_rto : float;
  max_rto : float;
  use_sack : bool;  (** use SACK blocks for recovery bookkeeping *)
  delayed_acks : bool;  (** receiver acks every other segment (RFC 1122) *)
}

val default_params : params

type t

val create :
  sim:Engine.Sim.t ->
  params ->
  transmit:(Tcp_wire.seg -> payload:int -> unit) ->
  unit ->
  t

val start : t -> unit
val stop : t -> unit

val on_ack : t -> Tcp_wire.ack -> unit

val cwnd : t -> float
val ssthresh : t -> float
val srtt : t -> float option
val rto : t -> float
val in_fast_recovery : t -> bool
val segments_sent : t -> int
val retransmits : t -> int
val timeouts : t -> int
