(** TCP segment bodies carried through the simulator.

    TCP is the paper's baseline; it gets its own frame bodies rather
    than reusing the VTP header, mirroring the fact that it is a
    distinct wire protocol. *)

type seg = {
  seq : Packet.Serial.t;  (** segment number (packet-granularity) *)
  tstamp : float;  (** send time, echoed by the ACK for RTT sampling *)
  is_retx : bool;
}

type ack = {
  cum_ack : Packet.Serial.t;  (** next expected segment *)
  blocks : Sack.Blocks.t list;  (** SACK option (empty when disabled) *)
  tstamp_echo : float;
  echo_is_retx : bool;  (** the echoed timestamp came from a retransmit *)
}

type Netsim.Frame.body += Seg of seg | Ack of ack

val seg_size : payload:int -> int
(** 40 B TCP/IP header + payload. *)

val ack_size : blocks:int -> int
(** 40 B header + 8 B per SACK block (+2 B option overhead when any). *)
