type t = {
  use_sack : bool;
  tracker : Sack.Rcv_tracker.t;
  send_ack : Tcp_wire.ack -> size:int -> unit;
  delack : Engine.Timer.t option ref;  (* armed = an ack is owed *)
  mutable pending : int;  (* in-order segments since the last ack *)
  mutable last_seg : Tcp_wire.seg option;
  mutable acks : int;
}

let emit_ack t (seg : Tcp_wire.seg) =
  t.pending <- 0;
  (match !(t.delack) with Some tm -> Engine.Timer.stop tm | None -> ());
  let blocks =
    if t.use_sack then Sack.Rcv_tracker.sack_blocks t.tracker else []
  in
  let ack =
    {
      Tcp_wire.cum_ack = Sack.Rcv_tracker.cum_ack t.tracker;
      blocks;
      tstamp_echo = seg.tstamp;
      echo_is_retx = seg.is_retx;
    }
  in
  t.acks <- t.acks + 1;
  t.send_ack ack ~size:(Tcp_wire.ack_size ~blocks:(List.length blocks))

let create ?(use_sack = false) ?delayed_acks ~send_ack () =
  let t =
    {
      use_sack;
      tracker = Sack.Rcv_tracker.create ~max_blocks:3 ();
      send_ack;
      delack = ref None;
      pending = 0;
      last_seg = None;
      acks = 0;
    }
  in
  (match delayed_acks with
  | Some sim ->
      t.delack :=
        Some
          (Engine.Timer.create sim ~on_expire:(fun () ->
               match t.last_seg with
               | Some seg when t.pending > 0 -> emit_ack t seg
               | Some _ | None -> ()))
  | None -> ());
  t

let on_segment t (seg : Tcp_wire.seg) =
  let cum_before = Sack.Rcv_tracker.cum_ack t.tracker in
  Sack.Rcv_tracker.on_data t.tracker ~seq:seg.seq;
  let cum_after = Sack.Rcv_tracker.cum_ack t.tracker in
  t.last_seg <- Some seg;
  match !(t.delack) with
  | None -> emit_ack t seg
  | Some tm ->
      (* RFC 1122: out-of-order (or gap-filling) segments are acked at
         once so fast retransmit keeps its dupack clock; in-order
         segments are acked every second one or after 200 ms. *)
      let in_order =
        Packet.Serial.( > ) cum_after cum_before
        && Packet.Serial.equal cum_after (Packet.Serial.succ seg.seq)
      in
      if not in_order then emit_ack t seg
      else begin
        t.pending <- t.pending + 1;
        if t.pending >= 2 then emit_ack t seg
        else Engine.Timer.start tm ~after:0.2
      end

let cum_ack t = Sack.Rcv_tracker.cum_ack t.tracker

let segments_received t = Sack.Rcv_tracker.packets t.tracker

let duplicates t = Sack.Rcv_tracker.duplicates t.tracker

let acks_sent t = t.acks
