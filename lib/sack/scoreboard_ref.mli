(** Frozen per-entry reference implementation of {!Scoreboard}, kept as the
    differential-testing oracle for the run-length rewrite.

    Sender-side SACK scoreboard.

    Tracks every transmitted-but-unacknowledged sequence number with its
    send time and retransmission count; digests SACK feedback into
    cumulative-ack advances, newly SACKed numbers, and loss inferences
    (a hole is deemed lost once [dupthresh] SACKed numbers lie above it
    — the SACK analogue of TCP's three duplicate ACKs); and supports
    time-based expiry as a last-resort loss detector when SACK
    information stalls. *)

type cover = {
  cov_seq : Packet.Serial.t;
  cov_sent_at : float;  (** first transmission time *)
  cov_was_retx : bool;  (** was ever retransmitted *)
}
(** A sequence number newly known to have reached the receiver. *)

type feedback_result = {
  newly_acked : cover list;  (** cumulative-ack advance, ascending seq *)
  newly_sacked : cover list;  (** new SACK coverage, ascending seq *)
  newly_lost : Packet.Serial.t list;  (** fresh loss inferences, ascending *)
  cum_advanced : bool;
}

type t

val create : ?dupthresh:int -> ?cost:Stats.Cost.t -> ?trace:Trace.Sink.t -> unit -> t
(** [trace] makes the scoreboard record retransmissions and loss
    inferences (dupthresh and timeout) into the flight recorder; the
    sink supplies the clock the scoreboard itself does not hold. *)

val on_send :
  t -> seq:Packet.Serial.t -> now:float -> size:int -> is_retx:bool -> unit
(** Record a (re)transmission.  New sequence numbers must be sent in
    order; retransmissions must reference a tracked number. *)

val next_seq : t -> Packet.Serial.t
(** The next fresh sequence number ([snd_nxt]). *)

val una : t -> Packet.Serial.t
(** Lowest unacknowledged sequence number ([snd_una]). *)

val on_feedback :
  t -> cum_ack:Packet.Serial.t -> blocks:Blocks.t list -> feedback_result

val lost_pending : t -> Packet.Serial.t list
(** Numbers currently inferred lost and not yet retransmitted,
    ascending. *)

val mark_expired : t -> now:float -> timeout:float -> Packet.Serial.t list
(** Promote to lost every unacked, unsacked number whose last
    transmission is older than [timeout].  Returns the newly lost
    numbers (they also join {!lost_pending}). *)

val abandon_below : t -> Packet.Serial.t -> unit
(** Give up on everything below the given number (partial/no
    reliability): entries are dropped as if acknowledged, without
    counting as delivered. *)

val retx_count : t -> Packet.Serial.t -> int
(** Retransmissions so far of one number (0 if unknown). *)

val status :
  t -> Packet.Serial.t -> [ `Untracked | `In_flight | `Sacked | `Lost ]
(** Current knowledge about one sequence number.  [`Untracked] means
    never sent, already cumulatively acked, or abandoned. *)

val first_sent_at : t -> Packet.Serial.t -> float option
(** Time of the original transmission, while still tracked. *)

val outstanding : t -> int
(** Tracked, not-yet-covered sequence numbers. *)

val in_flight_bytes : t -> int

val stats_sent : t -> int
val stats_retx : t -> int
val stats_acked : t -> int
