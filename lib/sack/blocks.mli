(** Pure algebra on SACK blocks.

    A block is the half-open range [\[block_start, block_end)] of
    received sequence numbers ({!Packet.Header.sack_block}).  Lists
    here are kept *normalised*: ascending, non-empty, non-overlapping,
    non-adjacent. *)

type t = Packet.Header.sack_block

val make : Packet.Serial.t -> Packet.Serial.t -> t
(** @raise Invalid_argument if the range is empty. *)

val length : t -> int

val contains : t -> Packet.Serial.t -> bool

val normalise : t list -> t list
(** Sort and coalesce arbitrary blocks into normal form. *)

val insert : t list -> Packet.Serial.t -> t list
(** Add one sequence number to a normalised list (stays normalised). *)

val mem : t list -> Packet.Serial.t -> bool

val total : t list -> int
(** Sum of block lengths. *)

val is_normalised : t list -> bool

val pp : Format.formatter -> t -> unit
