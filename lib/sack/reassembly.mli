(** Receiver-side in-order delivery buffer.

    Segments arrive out of order; the application wants a byte/segment
    stream.  Under full reliability the buffer simply waits for holes to
    be repaired.  Under partial/no reliability, the sender's forward
    point ({!Packet.Header.data}[.fwd_point]) authorises skipping holes:
    buffered segments beyond an abandoned hole are delivered and the gap
    is reported. *)

type t

val create :
  ?cost:Stats.Cost.t ->
  deliver:(seq:Packet.Serial.t -> size:int -> unit) ->
  on_gap:(skipped:int -> unit) ->
  unit ->
  t

val on_data : t -> seq:Packet.Serial.t -> size:int -> unit
(** Buffer (or immediately deliver) one segment.  Duplicates are
    dropped. *)

val apply_fwd_point : t -> Packet.Serial.t -> unit
(** Abandon holes below the forward point, releasing buffered segments
    behind them. *)

val next_expected : t -> Packet.Serial.t

val delivered : t -> int
(** Segments handed to the application. *)

val skipped : t -> int
(** Sequence numbers abandoned via forward points. *)

val buffered : t -> int
(** Segments currently held waiting for a hole. *)
