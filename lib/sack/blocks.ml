module Serial = Packet.Serial

type t = Packet.Header.sack_block

let make a b =
  if Serial.( >= ) a b then invalid_arg "Blocks.make: empty range";
  { Packet.Header.block_start = a; block_end = b }

let length (b : t) = Serial.diff b.block_end b.block_start

let contains (b : t) s = Serial.( <= ) b.block_start s && Serial.( < ) s b.block_end

let is_normalised blocks =
  let rec check = function
    | [] | [ _ ] -> true
    | (a : t) :: (b : t) :: rest ->
        Serial.( < ) a.block_end b.block_start && check ((b : t) :: rest)
  in
  List.for_all (fun b -> length b > 0) blocks && check blocks

let normalise blocks =
  let sorted =
    List.sort
      (fun (a : t) (b : t) -> Serial.compare a.block_start b.block_start)
      (List.filter (fun b -> length b > 0) blocks)
  in
  let rec merge = function
    | [] -> []
    | [ b ] -> [ b ]
    | (a : t) :: (b : t) :: rest ->
        if Serial.( >= ) a.block_end b.block_start then
          merge ({ a with block_end = Serial.max a.block_end b.block_end } :: rest)
        else a :: merge (b :: rest)
  in
  merge sorted

let insert blocks s =
  normalise ({ Packet.Header.block_start = s; block_end = Serial.succ s } :: blocks)

let mem blocks s = List.exists (fun b -> contains b s) blocks

let total blocks = List.fold_left (fun acc b -> acc + length b) 0 blocks

let pp fmt (b : t) =
  Format.fprintf fmt "[%a,%a)" Serial.pp b.block_start Serial.pp b.block_end
