module Serial = Packet.Serial

type range = {
  mutable lo : Serial.t;
  mutable hi : Serial.t;  (* half-open *)
  mutable touched : int;  (* recency stamp *)
}

type t = {
  max_blocks : int;
  cost : Stats.Cost.t option;
  mutable cum : Serial.t;
  mutable ranges : range list;  (* ascending, disjoint, above cum *)
  scratch : range array;  (* reused top-k buffer for {!sack_blocks} *)
  mutable stamp : int;
  mutable packets : int;
  mutable duplicates : int;
}

let dummy_range = { lo = Serial.zero; hi = Serial.zero; touched = -1 }

let create ?(max_blocks = 4) ?cost () =
  assert (max_blocks >= 1);
  {
    max_blocks;
    cost;
    cum = Serial.zero;
    ranges = [];
    scratch = Array.make max_blocks dummy_range;
    stamp = 0;
    packets = 0;
    duplicates = 0;
  }

let charge t name =
  match t.cost with Some c -> Stats.Cost.charge c name | None -> ()

let cum_ack t = t.cum

(* Closure-free containment test: [received] runs per segment, so the
   former [List.exists (fun r -> ...)] lambda is lifted to a plain
   recursion that allocates nothing. *)
let[@vtp.hot] rec ranges_cover s = function
  | [] -> false
  | r :: rest ->
      (Serial.( <= ) r.lo s && Serial.( < ) s r.hi) || ranges_cover s rest

let[@vtp.hot] received t s =
  Serial.( < ) s t.cum || ranges_cover s t.ranges

(* Deliberate-bug hook for the fuzz harness's negative test: with the
   duplicate check disabled, a duplicated segment re-inserts a range
   that may sit below (or inside) already-acknowledged territory, and
   the bogus block leaks into SACK reports — which the sack-wellformed
   invariant must catch.  Never set outside tests. *)
let[@vtp.ambient] test_only_skip_dup_check = ref false

(* Pull ranges that now touch the cumulative point into it. *)
let[@vtp.hot] rec advance_cum t =
  match t.ranges with
  | r :: rest when Serial.( <= ) r.lo t.cum ->
      if Serial.( > ) r.hi t.cum then t.cum <- r.hi;
      t.ranges <- rest;
      advance_cum t
  | _ :: _ | [] -> ()

(* Insert [seq,s1) into the ascending range list, merging neighbours.
   Lifted out of {!on_data} so the per-segment path builds no closure;
   it allocates only the list spine it rewrites (alloc-by-design). *)
let[@vtp.alloc_ok] rec insert_range ~stamp seq s1 = function
  | [] -> [ { lo = seq; hi = s1; touched = stamp } ]
  | r :: rest ->
      if Serial.( < ) s1 r.lo then
        { lo = seq; hi = s1; touched = stamp } :: r :: rest
      else if Serial.equal s1 r.lo then begin
        r.lo <- seq;
        r.touched <- stamp;
        r :: rest
      end
      else if Serial.equal seq r.hi then begin
        r.hi <- s1;
        r.touched <- stamp;
        (* May now touch the next range. *)
        match rest with
        | next :: tail when Serial.equal next.lo r.hi ->
            r.hi <- next.hi;
            r :: tail
        | _ -> r :: rest
      end
      else r :: insert_range ~stamp seq s1 rest

let[@vtp.hot] on_data t ~seq =
  charge t "recv.light.packet";
  t.packets <- t.packets + 1;
  t.stamp <- t.stamp + 1;
  if (not !test_only_skip_dup_check) && received t seq then
    t.duplicates <- t.duplicates + 1
  else if Serial.equal seq t.cum then begin
    t.cum <- Serial.succ t.cum;
    advance_cum t
  end
  else t.ranges <- insert_range ~stamp:t.stamp seq (Serial.succ seq) t.ranges

let apply_fwd_point t fwd =
  if Serial.( > ) fwd t.cum then begin
    t.cum <- fwd;
    (* Drop or trim ranges now below the cumulative point. *)
    t.ranges <-
      List.filter_map
        (fun r ->
          if Serial.( <= ) r.hi t.cum then None
          else begin
            if Serial.( < ) r.lo t.cum then r.lo <- t.cum;
            Some r
          end)
        t.ranges;
    advance_cum t
  end

let to_block r = { Packet.Header.block_start = r.lo; block_end = r.hi }

let all_ranges t = List.map to_block t.ranges

let highest_expected t =
  let rec last = function
    | [] -> t.cum
    | [ r ] -> r.hi
    | _ :: rest -> last rest
  in
  last t.ranges

(* Most-recently-touched [max_blocks] ranges, newest first (recency
   stamps are unique, so the selection is deterministic).  A bounded
   insertion pass over a reused scratch array replaces the former
   sort-whole-list / filter / map chain: only the returned blocks are
   allocated. *)
let sack_blocks t =
  charge t "recv.light.feedback";
  let top = t.scratch in
  let k = Array.length top in
  let count = ref 0 in
  List.iter
    (fun r ->
      if !count < k || r.touched > top.(k - 1).touched then begin
        let i = ref (Stdlib.min !count (k - 1)) in
        while !i > 0 && top.(!i - 1).touched < r.touched do
          top.(!i) <- top.(!i - 1);
          decr i
        done;
        top.(!i) <- r;
        if !count < k then incr count
      end)
    t.ranges;
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (to_block top.(i) :: acc)
  in
  let blocks = build (!count - 1) [] in
  Array.fill top 0 k dummy_range;
  blocks

let packets t = t.packets

let duplicates t = t.duplicates
