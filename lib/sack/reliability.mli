(** Sender-side reliability policy engine.

    The composition layer gives each transmission opportunity to this
    engine, which decides between a retransmission (a loss the policy
    still cares about) and fresh data.  Policies:

    - [Unreliable]: losses are never retransmitted; the forward point
      chases the highest sent number so the receiver never waits.
    - [Partial]: retransmit up to [max_retx] times and only while the
      segment is younger than [deadline] seconds; afterwards the segment
      is abandoned and the forward point moves past it.  This is the
      partial-reliability service multimedia wants (a late frame is a
      useless frame).
    - [Full]: retransmit until acknowledged.

    The engine consumes {!Scoreboard} loss signals; it owns the
    retransmission queue and the abandon decisions. *)

type policy =
  | Unreliable
  | Partial of { max_retx : int; deadline : float }
  | Full

val pp_policy : Format.formatter -> policy -> unit

type decision =
  | Retransmit of Packet.Serial.t
  | Fresh_data
      (** Nothing (left) to repair: send a new sequence number. *)

type t

val create :
  ?cost:Stats.Cost.t ->
  ?trace:Trace.Sink.t ->
  policy ->
  scoreboard:Scoreboard.t ->
  unit ->
  t
(** [trace] makes the engine record each abandon decision. *)

val policy : t -> policy

val on_loss : t -> now:float -> Packet.Serial.t -> unit
(** Feed one fresh loss inference from the scoreboard — the streaming
    twin of {!on_losses} for call sites that hold losses in a scratch
    buffer rather than a list. *)

val on_losses : t -> now:float -> Packet.Serial.t list -> unit
(** Feed fresh loss inferences from the scoreboard. *)

val next_decision : t -> now:float -> decision
(** What to put in the next transmission opportunity.  A [Retransmit]
    decision must be honoured by calling [Scoreboard.on_send ~is_retx:true]
    (the composition layer does). *)

val fwd_point : t -> highest_sent:Packet.Serial.t -> Packet.Serial.t
(** The forward point to advertise in the next data header. *)

val abandoned : t -> int
(** Segments the policy gave up on. *)

val retransmissions_queued : t -> int
