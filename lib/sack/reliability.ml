module Serial = Packet.Serial

type policy =
  | Unreliable
  | Partial of { max_retx : int; deadline : float }
  | Full

let pp_policy fmt = function
  | Unreliable -> Format.pp_print_string fmt "unreliable"
  | Partial { max_retx; deadline } ->
      Format.fprintf fmt "partial(retx<=%d,deadline=%.2fs)" max_retx deadline
  | Full -> Format.pp_print_string fmt "full"

type decision = Retransmit of Serial.t | Fresh_data

type t = {
  policy : policy;
  scoreboard : Scoreboard.t;
  cost : Stats.Cost.t option;
  trace : Trace.Sink.t option;
  queue : Serial.t Queue.t;
  queued : (int, unit) Hashtbl.t;
  abandoned_tbl : (int, unit) Hashtbl.t;
  mutable abandoned : int;
}

let create ?cost ?trace policy ~scoreboard () =
  {
    policy;
    scoreboard;
    cost;
    trace;
    queue = Queue.create ();
    queued = Hashtbl.create 64;
    abandoned_tbl = Hashtbl.create 64;
    abandoned = 0;
  }

let charge t name =
  match t.cost with Some c -> Stats.Cost.charge c name | None -> ()

let key = Serial.to_int

let abandon t seq =
  Hashtbl.replace t.abandoned_tbl (key seq) ();
  t.abandoned <- t.abandoned + 1;
  charge t "send.reliability.abandon";
  if Trace.Sink.on t.trace then
    Trace.Sink.emit t.trace (Trace.Event.Abandoned { seq })

let on_loss t ~now:_ seq =
  match t.policy with
  | Unreliable -> abandon t seq
  | Partial _ | Full ->
      if not (Hashtbl.mem t.queued (key seq)) then begin
        Hashtbl.replace t.queued (key seq) ();
        Queue.add seq t.queue;
        charge t "send.reliability.queue"
      end

let on_losses t ~now losses = List.iter (fun seq -> on_loss t ~now seq) losses

let rec next_decision t ~now =
  match Queue.take_opt t.queue with
  | None -> Fresh_data
  | Some seq -> (
      Hashtbl.remove t.queued (key seq);
      match Scoreboard.status t.scoreboard seq with
      | `Untracked | `Sacked | `In_flight ->
          (* Repaired, delivered, or retransmission already in flight:
             nothing to do for this number any more. *)
          next_decision t ~now
      | `Lost -> (
          match t.policy with
          | Unreliable -> next_decision t ~now
          | Full -> Retransmit seq
          | Partial { max_retx; deadline } ->
              let too_many = Scoreboard.retx_count t.scoreboard seq >= max_retx in
              let too_old =
                match Scoreboard.first_sent_at t.scoreboard seq with
                | Some sent -> now -. sent > deadline
                | None -> true
              in
              if too_many || too_old then begin
                abandon t seq;
                next_decision t ~now
              end
              else Retransmit seq))

let fwd_point t ~highest_sent =
  (* Walk up from snd_una through numbers the receiver need not wait
     for: abandoned holes and SACK-covered (already received) ones. *)
  let rec go s =
    if Serial.( >= ) s highest_sent then s
    else if Hashtbl.mem t.abandoned_tbl (key s) then go (Serial.succ s)
    else
      match Scoreboard.status t.scoreboard s with
      | `Sacked -> go (Serial.succ s)
      | `Untracked -> go (Serial.succ s)
      | `In_flight | `Lost -> s
  in
  go (Scoreboard.una t.scoreboard)

let policy t = t.policy

let abandoned t = t.abandoned

let retransmissions_queued t = Queue.length t.queue
