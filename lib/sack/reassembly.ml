module Serial = Packet.Serial

type t = {
  cost : Stats.Cost.t option;
  deliver : seq:Serial.t -> size:int -> unit;
  on_gap : skipped:int -> unit;
  buffer : (int, int) Hashtbl.t;  (* seq -> size *)
  mutable next : Serial.t;
  mutable delivered : int;
  mutable skipped : int;
}

let create ?cost ~deliver ~on_gap () =
  {
    cost;
    deliver;
    on_gap;
    buffer = Hashtbl.create 64;
    next = Serial.zero;
    delivered = 0;
    skipped = 0;
  }

let charge t name =
  match t.cost with Some c -> Stats.Cost.charge c name | None -> ()

let rec drain t =
  match Hashtbl.find_opt t.buffer (Serial.to_int t.next) with
  | Some size ->
      Hashtbl.remove t.buffer (Serial.to_int t.next);
      t.deliver ~seq:t.next ~size;
      t.delivered <- t.delivered + 1;
      t.next <- Serial.succ t.next;
      drain t
  | None -> ()

let on_data t ~seq ~size =
  charge t "recv.reassembly";
  if Serial.( >= ) seq t.next && not (Hashtbl.mem t.buffer (Serial.to_int seq))
  then begin
    if Serial.equal seq t.next then begin
      t.deliver ~seq ~size;
      t.delivered <- t.delivered + 1;
      t.next <- Serial.succ t.next;
      drain t
    end
    else Hashtbl.replace t.buffer (Serial.to_int seq) size
  end;
  match t.cost with
  | Some c -> Stats.Cost.watermark c "recv.reassembly.buffered" (Hashtbl.length t.buffer)
  | None -> ()

let apply_fwd_point t fwd =
  if Serial.( > ) fwd t.next then begin
    let gap = ref 0 in
    List.iter
      (fun s ->
        match Hashtbl.find_opt t.buffer (Serial.to_int s) with
        | Some size ->
            Hashtbl.remove t.buffer (Serial.to_int s);
            t.deliver ~seq:s ~size;
            t.delivered <- t.delivered + 1
        | None ->
            incr gap;
            t.skipped <- t.skipped + 1)
      (Serial.range t.next fwd);
    t.next <- fwd;
    if !gap > 0 then t.on_gap ~skipped:!gap;
    drain t
  end

let next_expected t = t.next

let delivered t = t.delivered

let skipped t = t.skipped

let buffered t = Hashtbl.length t.buffer
