module Serial = Packet.Serial

type entry = {
  seq : Serial.t;
  size : int;
  first_sent : float;
  mutable last_sent : float;
  mutable retx : int;
  mutable sacked : bool;
  mutable lost : bool;  (* inferred lost, retransmission due *)
}

type cover = {
  cov_seq : Serial.t;
  cov_sent_at : float;
  cov_was_retx : bool;
}

type feedback_result = {
  newly_acked : cover list;
  newly_sacked : cover list;
  newly_lost : Serial.t list;
  cum_advanced : bool;
}

type t = {
  dupthresh : int;
  cost : Stats.Cost.t option;
  trace : Trace.Sink.t option;
  tbl : (int, entry) Hashtbl.t;
  mutable snd_una : Serial.t;
  mutable snd_nxt : Serial.t;
  mutable sent : int;
  mutable retx : int;
  mutable acked : int;
}

let create ?(dupthresh = 3) ?cost ?trace () =
  assert (dupthresh >= 1);
  {
    dupthresh;
    cost;
    trace;
    tbl = Hashtbl.create 256;
    snd_una = Serial.zero;
    snd_nxt = Serial.zero;
    sent = 0;
    retx = 0;
    acked = 0;
  }

let charge t ?ops name =
  match t.cost with Some c -> Stats.Cost.charge c ?ops name | None -> ()

let key s = Serial.to_int s

let[@vtp.hot] find t s = Hashtbl.find_opt t.tbl (key s)

let[@vtp.hot] on_send t ~seq ~now ~size ~is_retx =
  charge t "send.scoreboard.send";
  if is_retx then begin
    match find t seq with
    | None -> invalid_arg "Scoreboard.on_send: retransmit of unknown seq"
    | Some e ->
        e.last_sent <- now;
        e.retx <- e.retx + 1;
        e.lost <- false;
        t.retx <- t.retx + 1;
        if Trace.Sink.on t.trace then
          Trace.Sink.emit t.trace
            (Trace.Event.Retransmit { seq = e.seq; count = e.retx })
  end
  else begin
    if not (Serial.equal seq t.snd_nxt) then
      invalid_arg "Scoreboard.on_send: new data out of order";
    Hashtbl.replace t.tbl (key seq)
      {
        seq;
        size;
        first_sent = now;
        last_sent = now;
        retx = 0;
        sacked = false;
        lost = false;
      };
    t.snd_nxt <- Serial.succ seq;
    t.sent <- t.sent + 1
  end;
  match t.cost with
  | Some c -> Stats.Cost.watermark c "send.scoreboard.entries" (Hashtbl.length t.tbl)
  | None -> ()

let next_seq t = t.snd_nxt

let una t = t.snd_una

let cover_of (e : entry) =
  { cov_seq = e.seq; cov_sent_at = e.first_sent; cov_was_retx = e.retx > 0 }

(* Entries between una and nxt in ascending sequence order. *)
let entries_in_order t =
  let n = Serial.diff t.snd_nxt t.snd_una in
  let rec collect i acc =
    if i < 0 then acc
    else begin
      let s = Serial.add t.snd_una i in
      match find t s with
      | Some e -> collect (i - 1) (e :: acc)
      | None -> collect (i - 1) acc
    end
  in
  if n <= 0 then [] else collect (n - 1) []

let on_feedback t ~cum_ack ~blocks =
  charge t "send.scoreboard.feedback";
  (* 1. Cumulative advance. *)
  let newly_acked = ref [] in
  let cum_advanced = Serial.( > ) cum_ack t.snd_una in
  if cum_advanced then begin
    Serial.iter_range
      (fun s ->
        match find t s with
        | Some e ->
            (* Entries already SACKed were reported as covered when the
               SACK arrived; don't surface them twice. *)
            if not e.sacked then newly_acked := cover_of e :: !newly_acked;
            t.acked <- t.acked + 1;
            Hashtbl.remove t.tbl (key s)
        | None -> ())
      t.snd_una
      (Serial.min cum_ack t.snd_nxt);
    t.snd_una <- Serial.max t.snd_una (Serial.min cum_ack t.snd_nxt)
  end;
  (* 2. SACK coverage. *)
  let newly_sacked = ref [] in
  List.iter
    (fun (b : Blocks.t) ->
      Serial.iter_range
        (fun s ->
          match find t s with
          | Some e when not e.sacked ->
              e.sacked <- true;
              e.lost <- false;
              newly_sacked := cover_of e :: !newly_sacked
          | Some _ | None -> ())
        b.block_start b.block_end)
    blocks;
  (* 3. Loss inference: dupthresh SACKed numbers above an uncovered one.
     Walk from highest to lowest sequence counting SACKed entries. *)
  let sacked_above = ref 0 in
  let newly_lost = ref [] in
  let span = Serial.diff t.snd_nxt t.snd_una in
  for i = span - 1 downto 0 do
    match find t (Serial.add t.snd_una i) with
    | Some e ->
        if e.sacked then incr sacked_above
        else if !sacked_above >= t.dupthresh && not e.lost then begin
          e.lost <- true;
          newly_lost := e.seq :: !newly_lost;
          if Trace.Sink.on t.trace then
            Trace.Sink.emit t.trace
              (Trace.Event.Loss_inferred
                 { seq = e.seq; by = Trace.Event.I_dupthresh })
        end
    | None -> ()
  done;
  let by_seq f a b = Serial.compare (f a) (f b) in
  {
    newly_acked = List.sort (by_seq (fun c -> c.cov_seq)) !newly_acked;
    newly_sacked = List.sort (by_seq (fun c -> c.cov_seq)) !newly_sacked;
    newly_lost = List.sort Serial.compare !newly_lost;
    cum_advanced;
  }

let lost_pending t =
  entries_in_order t
  |> List.filter (fun e -> e.lost)
  |> List.map (fun e -> e.seq)

let mark_expired t ~now ~timeout =
  let fresh = ref [] in
  List.iter
    (fun e ->
      if (not e.sacked) && (not e.lost) && now -. e.last_sent > timeout then begin
        e.lost <- true;
        fresh := e.seq :: !fresh;
        if Trace.Sink.on t.trace then
          Trace.Sink.emit t.trace
            (Trace.Event.Loss_inferred
               { seq = e.seq; by = Trace.Event.I_timeout })
      end)
    (entries_in_order t);
  List.sort Serial.compare !fresh

let abandon_below t limit =
  let limit = Serial.min limit t.snd_nxt in
  if Serial.( > ) limit t.snd_una then begin
    Serial.iter_range (fun s -> Hashtbl.remove t.tbl (key s)) t.snd_una limit;
    t.snd_una <- limit
  end

let retx_count t s = match find t s with Some e -> e.retx | None -> 0

let status t s =
  match find t s with
  | None -> `Untracked
  | Some e -> if e.sacked then `Sacked else if e.lost then `Lost else `In_flight

let first_sent_at t s =
  match find t s with Some e -> Some e.first_sent | None -> None

let outstanding t = Hashtbl.length t.tbl

let in_flight_bytes t =
  Hashtbl.fold (fun _ e acc -> if e.sacked then acc else acc + e.size) t.tbl 0

let stats_sent t = t.sent
let stats_retx t = t.retx
let stats_acked t = t.acked
