module Serial = Packet.Serial

(* Run-length receiver tracking: the out-of-order ranges live in sorted
   parallel int arrays (absolute positions, half-open) with a moving
   front offset, so the per-segment paths are a binary search plus O(1)
   amortised editing instead of a list walk.  [Rcv_tracker_ref] keeps
   the list implementation as the differential oracle.

   Absolute positions are anchored at the cumulative ack:
   [abs = cum_abs + Serial.diff s cum]; the anchor only moves forward,
   so positions are monotone even though serials wrap. *)

type t = {
  max_blocks : int;
  cost : Stats.Cost.t option;
  mutable cum : Serial.t;
  mutable cum_abs : int;
  (* live ranges are [fst, len) of the parallel arrays *)
  mutable lo : int array;
  mutable hi : int array;
  mutable touched : int array;  (* recency stamp *)
  mutable fst : int;
  mutable len : int;
  (* reused top-k buffers for {!sack_blocks} *)
  s_lo : int array;
  s_hi : int array;
  s_touch : int array;
  mutable stamp : int;
  mutable packets : int;
  mutable duplicates : int;
}

let create ?(max_blocks = 4) ?cost () =
  assert (max_blocks >= 1);
  {
    max_blocks;
    cost;
    cum = Serial.zero;
    cum_abs = 0;
    lo = Array.make 16 0;
    hi = Array.make 16 0;
    touched = Array.make 16 0;
    fst = 0;
    len = 0;
    s_lo = Array.make max_blocks 0;
    s_hi = Array.make max_blocks 0;
    s_touch = Array.make max_blocks (-1);
    stamp = 0;
    packets = 0;
    duplicates = 0;
  }

let charge t name =
  match t.cost with Some c -> Stats.Cost.charge c name | None -> ()

let cum_ack t = t.cum

let[@vtp.hot] abs_of t s = t.cum_abs + Serial.diff s t.cum

let ser_of t a = Serial.add t.cum (a - t.cum_abs)

(* Smallest live index whose range ends strictly after [a] — the only
   range that can contain [a].  Accumulator recursion, so the
   per-segment membership test allocates nothing. *)
let[@vtp.hot] rec seek_from t a lo hi =
  if lo >= hi then lo
  else
    let mid = (lo + hi) lsr 1 in
    if Array.unsafe_get t.hi mid > a then seek_from t a lo mid
    else seek_from t a (mid + 1) hi

let[@vtp.hot] seek t a = seek_from t a t.fst t.len

let[@vtp.hot] covers t a =
  let i = seek t a in
  i < t.len && Array.unsafe_get t.lo i <= a

let[@vtp.hot] received t s = Serial.( < ) s t.cum || covers t (abs_of t s)

(* Deliberate-bug hook for the fuzz harness's negative test: with the
   duplicate check disabled, a duplicated segment re-inserts a range
   that may sit below (or inside) already-acknowledged territory, and
   the bogus block leaks into SACK reports — which the sack-wellformed
   invariant must catch.  Never set outside tests. *)
let[@vtp.ambient] test_only_skip_dup_check = ref false

(* Pull ranges that now touch the cumulative point into it. *)
let[@vtp.hot] rec advance_cum t =
  if t.fst < t.len && Array.unsafe_get t.lo t.fst <= t.cum_abs then begin
    let h = Array.unsafe_get t.hi t.fst in
    if h > t.cum_abs then begin
      t.cum <- Serial.add t.cum (h - t.cum_abs);
      t.cum_abs <- h
    end;
    t.fst <- t.fst + 1;
    advance_cum t
  end

(* Make room for one more range, compacting the dead front first and
   only growing when genuinely full. *)
let reserve t =
  let cap = Array.length t.lo in
  if t.len = cap then begin
    let live = t.len - t.fst in
    if t.fst > 0 then begin
      Array.blit t.lo t.fst t.lo 0 live;
      Array.blit t.hi t.fst t.hi 0 live;
      Array.blit t.touched t.fst t.touched 0 live
    end
    else begin
      let ncap = 2 * cap in
      let nlo = Array.make ncap 0
      and nhi = Array.make ncap 0
      and ntouch = Array.make ncap 0 in
      Array.blit t.lo t.fst nlo 0 live;
      Array.blit t.hi t.fst nhi 0 live;
      Array.blit t.touched t.fst ntouch 0 live;
      t.lo <- nlo;
      t.hi <- nhi;
      t.touched <- ntouch
    end;
    t.fst <- 0;
    t.len <- live
  end

(* Precondition: a free slot exists ([reserve] ran this operation). *)
let shift_right t pos =
  Array.blit t.lo pos t.lo (pos + 1) (t.len - pos);
  Array.blit t.hi pos t.hi (pos + 1) (t.len - pos);
  Array.blit t.touched pos t.touched (pos + 1) (t.len - pos);
  t.len <- t.len + 1

let delete_at t pos =
  Array.blit t.lo (pos + 1) t.lo pos (t.len - pos - 1);
  Array.blit t.hi (pos + 1) t.hi pos (t.len - pos - 1);
  Array.blit t.touched (pos + 1) t.touched pos (t.len - pos - 1);
  t.len <- t.len - 1

(* Insert the fresh point [a], extending a touching neighbour (and
   closing a one-wide gap by merging both) or opening a new range. *)
let[@vtp.hot] insert_point t a =
  reserve t;  (* may compact or grow: run before any index is taken *)
  let pos = seek t a in
  let prev = pos - 1 in
  if prev >= t.fst && Array.unsafe_get t.hi prev = a then begin
    t.hi.(prev) <- a + 1;
    t.touched.(prev) <- t.stamp;
    if pos < t.len && Array.unsafe_get t.lo pos = a + 1 then begin
      t.hi.(prev) <- Array.unsafe_get t.hi pos;
      delete_at t pos
    end
  end
  else if pos < t.len && Array.unsafe_get t.lo pos = a + 1 then begin
    t.lo.(pos) <- a;
    t.touched.(pos) <- t.stamp
  end
  else begin
    shift_right t pos;
    t.lo.(pos) <- a;
    t.hi.(pos) <- a + 1;
    t.touched.(pos) <- t.stamp
  end

let[@vtp.hot] on_data t ~seq =
  charge t "recv.light.packet";
  t.packets <- t.packets + 1;
  t.stamp <- t.stamp + 1;
  if (not !test_only_skip_dup_check) && received t seq then
    t.duplicates <- t.duplicates + 1
  else if Serial.equal seq t.cum then begin
    t.cum <- Serial.succ t.cum;
    t.cum_abs <- t.cum_abs + 1;
    advance_cum t
  end
  else insert_point t (abs_of t seq)

let apply_fwd_point t fwd =
  if Serial.( > ) fwd t.cum then begin
    let d = Serial.diff fwd t.cum in
    t.cum <- fwd;
    t.cum_abs <- t.cum_abs + d;
    (* Drop ranges now wholly below the cumulative point, trim a
       straddler, then absorb a range touching it. *)
    while t.fst < t.len && t.hi.(t.fst) <= t.cum_abs do
      t.fst <- t.fst + 1
    done;
    if t.fst < t.len && t.lo.(t.fst) < t.cum_abs then t.lo.(t.fst) <- t.cum_abs;
    advance_cum t
  end

let block_of t i =
  { Packet.Header.block_start = ser_of t t.lo.(i); block_end = ser_of t t.hi.(i) }

let all_ranges t =
  let rec collect t i acc =
    if i < t.fst then acc else collect t (i - 1) (block_of t i :: acc)
  in
  collect t (t.len - 1) []

let highest_expected t = if t.len > t.fst then ser_of t t.hi.(t.len - 1) else t.cum

(* Most-recently-touched [max_blocks] ranges, newest first (recency
   stamps are unique, so the selection is deterministic).  A bounded
   insertion pass over reused scratch arrays: only the returned blocks
   are allocated. *)
let sack_blocks t =
  charge t "recv.light.feedback";
  let k = t.max_blocks in
  let count = ref 0 in
  for idx = t.fst to t.len - 1 do
    let tch = t.touched.(idx) in
    if !count < k || tch > t.s_touch.(k - 1) then begin
      let i = ref (Stdlib.min !count (k - 1)) in
      while !i > 0 && t.s_touch.(!i - 1) < tch do
        t.s_lo.(!i) <- t.s_lo.(!i - 1);
        t.s_hi.(!i) <- t.s_hi.(!i - 1);
        t.s_touch.(!i) <- t.s_touch.(!i - 1);
        decr i
      done;
      t.s_lo.(!i) <- t.lo.(idx);
      t.s_hi.(!i) <- t.hi.(idx);
      t.s_touch.(!i) <- tch;
      if !count < k then incr count
    end
  done;
  let rec build i acc =
    if i < 0 then acc
    else
      build (i - 1)
        ({
           Packet.Header.block_start = ser_of t t.s_lo.(i);
           block_end = ser_of t t.s_hi.(i);
         }
        :: acc)
  in
  let blocks = build (!count - 1) [] in
  Array.fill t.s_touch 0 k (-1);
  blocks

let ranges_held t = t.len - t.fst

let packets t = t.packets

let duplicates t = t.duplicates
