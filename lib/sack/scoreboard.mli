(** Sender-side SACK scoreboard.

    Tracks every transmitted-but-unacknowledged sequence number with its
    send time and retransmission count; digests SACK feedback into
    cumulative-ack advances, newly SACKed numbers, and loss inferences
    (a hole is deemed lost once [dupthresh] SACKed numbers lie above it
    — the SACK analogue of TCP's three duplicate ACKs); and supports
    time-based expiry as a last-resort loss detector when SACK
    information stalls. *)

type cover = {
  cov_seq : Packet.Serial.t;
  cov_sent_at : float;  (** first transmission time *)
  cov_was_retx : bool;  (** was ever retransmitted *)
}
(** A sequence number newly known to have reached the receiver. *)

type feedback_result = {
  newly_acked : cover list;  (** cumulative-ack advance, ascending seq *)
  newly_sacked : cover list;  (** new SACK coverage, ascending seq *)
  newly_lost : Packet.Serial.t list;  (** fresh loss inferences, ascending *)
  cum_advanced : bool;
}

type t

val create :
  ?dupthresh:int ->
  ?capacity:int ->
  ?cost:Stats.Cost.t ->
  ?trace:Trace.Sink.t ->
  unit ->
  t
(** [trace] makes the scoreboard record retransmissions and loss
    inferences (dupthresh and timeout) into the flight recorder; the
    sink supplies the clock the scoreboard itself does not hold.
    [capacity] pre-sizes the per-packet ring (rounded up to a power of
    two, default 256); the ring grows on demand either way, so this is
    purely a steady-state hint for large-BDP windows. *)

val on_send :
  t -> seq:Packet.Serial.t -> now:float -> size:int -> is_retx:bool -> unit
(** Record a (re)transmission.  New sequence numbers must be sent in
    order; retransmissions must reference a tracked number. *)

val next_seq : t -> Packet.Serial.t
(** The next fresh sequence number ([snd_nxt]). *)

val una : t -> Packet.Serial.t
(** Lowest unacknowledged sequence number ([snd_una]). *)

type feedback_summary = {
  fb_acked : int;
  fb_sacked : int;
  fb_lost : int;
  fb_cum_advanced : bool;
}
(** Counts of what one feedback digest uncovered — everything the hot
    path needs that is not already streamed through the callbacks. *)

val iter_feedback :
  t ->
  cum_ack:Packet.Serial.t ->
  blocks:Blocks.t list ->
  on_ack:(seq:Packet.Serial.t -> sent_at:float -> was_retx:bool -> unit) ->
  on_sack:(seq:Packet.Serial.t -> sent_at:float -> was_retx:bool -> unit) ->
  on_lost:(Packet.Serial.t -> unit) ->
  feedback_summary
(** Streaming feedback digest: the iterator twin of {!on_feedback},
    with identical state effects but no per-cover list materialisation —
    the fast path for bulk cumulative advances over trunk- and LFN-sized
    windows.  [on_ack] fires for every cumulative-ack cover and
    [on_sack] for every fresh SACK cover, each ascending, all acks
    before all sacks (so a single callback passed to both observes the
    merged covers in globally ascending sequence order).  [on_lost]
    fires ascending for every fresh dupthresh loss inference, after all
    covers.  [sent_at] is the cover's first transmission time. *)

val on_feedback :
  t -> cum_ack:Packet.Serial.t -> blocks:Blocks.t list -> feedback_result
(** List-building wrapper over {!iter_feedback} (kept as the
    differential-test surface against [Scoreboard_ref]). *)

val lost_pending : t -> Packet.Serial.t list
(** Numbers currently inferred lost and not yet retransmitted,
    ascending. *)

val mark_expired : t -> now:float -> timeout:float -> Packet.Serial.t list
(** Promote to lost every unacked, unsacked number whose last
    transmission is older than [timeout].  Returns the newly lost
    numbers (they also join {!lost_pending}). *)

val abandon_below : t -> Packet.Serial.t -> unit
(** Give up on everything below the given number (partial/no
    reliability): entries are dropped as if acknowledged, without
    counting as delivered. *)

val retx_count : t -> Packet.Serial.t -> int
(** Retransmissions so far of one number (0 if unknown). *)

val status :
  t -> Packet.Serial.t -> [ `Untracked | `In_flight | `Sacked | `Lost ]
(** Current knowledge about one sequence number.  [`Untracked] means
    never sent, already cumulatively acked, or abandoned. *)

val first_sent_at : t -> Packet.Serial.t -> float option
(** Time of the original transmission, while still tracked. *)

val outstanding : t -> int
(** Tracked, not-yet-covered sequence numbers. *)

val in_flight_bytes : t -> int

val runs_held : t -> int * int
(** [(sacked_runs, lost_runs)] currently held by the run-length state —
    introspection for the adversarial fragmentation tests and benches. *)

val stats_sent : t -> int
val stats_retx : t -> int
val stats_acked : t -> int
