module Serial = Packet.Serial

(* Run-length scoreboard: instead of one hashtable entry per in-flight
   sequence number, per-packet metadata (send times, size, retransmit
   count) lives in ring arrays indexed by an absolute position, and the
   SACKed / inferred-lost state lives in two sorted, coalesced run
   arrays.  Feedback for a large-BDP window (tens of thousands of
   packets) then merges in O(log runs + newly-covered) instead of
   iterating every sequence number.  [Scoreboard_ref] keeps the
   per-entry implementation as the differential oracle.

   Sequence numbers are mapped to monotone absolute positions through
   an advancing anchor: [abs = una_abs + Serial.diff s snd_una].  The
   anchor moves only forward (cumulative ack, abandon), so positions
   never wrap even though serials do. *)

type cover = {
  cov_seq : Serial.t;
  cov_sent_at : float;
  cov_was_retx : bool;
}

type feedback_result = {
  newly_acked : cover list;
  newly_sacked : cover list;
  newly_lost : Serial.t list;
  cum_advanced : bool;
}

(* Sorted, coalesced, half-open [lo, hi) runs over absolute positions,
   in growable parallel arrays. *)
module Runs = struct
  type t = { mutable lo : int array; mutable hi : int array; mutable len : int }

  let create () = { lo = Array.make 8 0; hi = Array.make 8 0; len = 0 }

  (* Smallest index whose run ends strictly after [x] — the only run
     that can contain [x].  Plain accumulator recursion so the
     per-packet membership test allocates nothing. *)
  let[@vtp.hot] rec seek_from t x lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) lsr 1 in
      if Array.unsafe_get t.hi mid > x then seek_from t x lo mid
      else seek_from t x (mid + 1) hi

  let[@vtp.hot] seek t x = seek_from t x 0 t.len

  let[@vtp.hot] mem t x =
    let i = seek t x in
    i < t.len && Array.unsafe_get t.lo i <= x

  let ensure t extra =
    let cap = Array.length t.lo in
    if t.len + extra > cap then begin
      let ncap = Stdlib.max (t.len + extra) (2 * cap) in
      let nlo = Array.make ncap 0 and nhi = Array.make ncap 0 in
      Array.blit t.lo 0 nlo 0 t.len;
      Array.blit t.hi 0 nhi 0 t.len;
      t.lo <- nlo;
      t.hi <- nhi
    end

  (* Replace runs [i, j) by the single run [l, h); [j = i] inserts. *)
  let splice t i j l h =
    if j - i = 1 then begin
      t.lo.(i) <- l;
      t.hi.(i) <- h
    end
    else if j > i then begin
      t.lo.(i) <- l;
      t.hi.(i) <- h;
      Array.blit t.lo j t.lo (i + 1) (t.len - j);
      Array.blit t.hi j t.hi (i + 1) (t.len - j);
      t.len <- t.len - (j - i - 1)
    end
    else begin
      ensure t 1;
      Array.blit t.lo i t.lo (i + 1) (t.len - i);
      Array.blit t.hi i t.hi (i + 1) (t.len - i);
      t.lo.(i) <- l;
      t.hi.(i) <- h;
      t.len <- t.len + 1
    end

  (* Add [l, h), coalescing with every overlapping or touching run. *)
  let add t l h =
    if l < h then begin
      let i = seek t (l - 1) in
      let j = ref i in
      while !j < t.len && t.lo.(!j) <= h do
        incr j
      done;
      if i = !j then splice t i i l h
      else splice t i !j (Stdlib.min l t.lo.(i)) (Stdlib.max h t.hi.(!j - 1))
    end

  (* Remove [l, h), trimming straddlers and splitting a container. *)
  let remove t l h =
    if l < h then begin
      let i = seek t l in
      if i < t.len && t.lo.(i) < h then begin
        if t.lo.(i) < l && t.hi.(i) > h then begin
          (* one run strictly contains [l, h): split it *)
          ensure t 1;
          Array.blit t.lo i t.lo (i + 1) (t.len - i);
          Array.blit t.hi i t.hi (i + 1) (t.len - i);
          t.len <- t.len + 1;
          t.hi.(i) <- l;
          t.lo.(i + 1) <- h
        end
        else begin
          let i = if t.lo.(i) < l then begin t.hi.(i) <- l; i + 1 end else i in
          let j = ref i in
          while !j < t.len && t.hi.(!j) <= h do
            incr j
          done;
          if !j < t.len && t.lo.(!j) < h then t.lo.(!j) <- h;
          if !j > i then begin
            Array.blit t.lo !j t.lo i (t.len - !j);
            Array.blit t.hi !j t.hi i (t.len - !j);
            t.len <- t.len - (!j - i)
          end
        end
      end
    end

  (* Drop everything below [x]. *)
  let trim_below t x =
    let i = seek t x in
    if i > 0 then begin
      Array.blit t.lo i t.lo 0 (t.len - i);
      Array.blit t.hi i t.hi 0 (t.len - i);
      t.len <- t.len - i
    end;
    if t.len > 0 && t.lo.(0) < x then t.lo.(0) <- x

  (* Absolute position of the [k]-th highest covered point, or
     [min_int] when fewer than [k] points are covered. *)
  let rec kth_from_top_at t i k =
    if i < 0 then min_int
    else
      let w = t.hi.(i) - t.lo.(i) in
      if k <= w then t.hi.(i) - k
      else kth_from_top_at t (i - 1) (k - w)

  let kth_from_top t k = kth_from_top_at t (t.len - 1) k

  (* Apply [f gl gh] to every maximal uncovered gap within [l, h),
     ascending. *)
  let iter_gaps t l h f =
    let a = ref l and i = ref (seek t l) in
    while !a < h do
      if !i >= t.len || !a < t.lo.(!i) then begin
        let stop = if !i >= t.len then h else Stdlib.min h t.lo.(!i) in
        f !a stop;
        a := stop
      end
      else begin
        a := Stdlib.max !a t.hi.(!i);
        incr i
      end
    done
end

type t = {
  dupthresh : int;
  cost : Stats.Cost.t option;
  trace : Trace.Sink.t option;
  (* ring arrays indexed by [abs land mask]; live slots are exactly
     [una_abs, nxt_abs) *)
  mutable first_sent : float array;
  mutable last_sent : float array;
  mutable meta : int array;  (* size lor (retx lsl retx_shift) *)
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable una_abs : int;
  mutable nxt_abs : int;
  mutable snd_una : Serial.t;
  mutable snd_nxt : Serial.t;
  sacked : Runs.t;
  lost : Runs.t;
  mutable unsacked_bytes : int;
  mutable sent : int;
  mutable retx : int;
  mutable acked : int;
  (* reusable per-feedback scratch runs: the clipped SACK blocks
     (phase 2) and the freshly inferred loss runs (phase 3) of
     [iter_feedback] — per-call lists here would be the last
     allocations on the feedback fast path *)
  mutable scr_lo : int array;
  mutable scr_hi : int array;
}

let retx_shift = 30
let size_mask = (1 lsl retx_shift) - 1

let create ?(dupthresh = 3) ?(capacity = 256) ?cost ?trace () =
  assert (dupthresh >= 1);
  (* Round the ring up to a power of two; large-BDP senders pass their
     expected window so steady state never pays the doubling copies. *)
  let cap = ref 256 in
  while !cap < capacity do
    cap := 2 * !cap
  done;
  let cap = !cap in
  {
    dupthresh;
    cost;
    trace;
    first_sent = Array.make cap 0.0;
    last_sent = Array.make cap 0.0;
    meta = Array.make cap 0;
    mask = cap - 1;
    una_abs = 0;
    nxt_abs = 0;
    snd_una = Serial.zero;
    snd_nxt = Serial.zero;
    sacked = Runs.create ();
    lost = Runs.create ();
    unsacked_bytes = 0;
    sent = 0;
    retx = 0;
    acked = 0;
    scr_lo = Array.make 8 0;
    scr_hi = Array.make 8 0;
  }

let charge t ?ops name =
  match t.cost with Some c -> Stats.Cost.charge c ?ops name | None -> ()

let[@vtp.hot] abs_of t s = t.una_abs + Serial.diff s t.snd_una

let ser_of t a = Serial.add t.snd_una (a - t.una_abs)

let grow t =
  let ncap = 2 * (t.mask + 1) in
  let nmask = ncap - 1 in
  let nfs = Array.make ncap 0.0
  and nls = Array.make ncap 0.0
  and nmeta = Array.make ncap 0 in
  for a = t.una_abs to t.nxt_abs - 1 do
    nfs.(a land nmask) <- t.first_sent.(a land t.mask);
    nls.(a land nmask) <- t.last_sent.(a land t.mask);
    nmeta.(a land nmask) <- t.meta.(a land t.mask)
  done;
  t.first_sent <- nfs;
  t.last_sent <- nls;
  t.meta <- nmeta;
  t.mask <- nmask

let[@vtp.hot] on_send t ~seq ~now ~size ~is_retx =
  charge t "send.scoreboard.send";
  if is_retx then begin
    let a = abs_of t seq in
    if a < t.una_abs || a >= t.nxt_abs then
      invalid_arg "Scoreboard.on_send: retransmit of unknown seq";
    let i = a land t.mask in
    t.last_sent.(i) <- now;
    t.meta.(i) <- t.meta.(i) + (1 lsl retx_shift);
    Runs.remove t.lost a (a + 1);
    t.retx <- t.retx + 1;
    if Trace.Sink.on t.trace then
      Trace.Sink.emit t.trace
        (Trace.Event.Retransmit { seq; count = t.meta.(i) lsr retx_shift })
  end
  else begin
    if not (Serial.equal seq t.snd_nxt) then
      invalid_arg "Scoreboard.on_send: new data out of order";
    if t.nxt_abs - t.una_abs > t.mask then grow t;
    (* [i <= mask < length] by construction, so the masked ring writes
       need no bounds checks — this is the per-packet fast path. *)
    let i = t.nxt_abs land t.mask in
    Array.unsafe_set t.first_sent i now;
    Array.unsafe_set t.last_sent i now;
    Array.unsafe_set t.meta i (size land size_mask);
    t.nxt_abs <- t.nxt_abs + 1;
    t.snd_nxt <- Serial.succ seq;
    t.sent <- t.sent + 1;
    t.unsacked_bytes <- t.unsacked_bytes + size
  end;
  match t.cost with
  | Some c ->
      Stats.Cost.watermark c "send.scoreboard.entries" (t.nxt_abs - t.una_abs)
  | None -> ()

let next_seq t = t.snd_nxt

let una t = t.snd_una

let size_at t a = t.meta.(a land t.mask) land size_mask

type feedback_summary = {
  fb_acked : int;
  fb_sacked : int;
  fb_lost : int;
  fb_cum_advanced : bool;
}

(* The streaming feedback digest.  Covers are pushed to the callbacks in
   globally ascending sequence order without materialising cover records
   or lists: every cumulative-ack cover lies below the advanced
   [una_abs] and every SACK cover at or above it, and processing blocks
   in ascending order of clipped lower bound keeps the SACK emissions
   ascending too (a block's range is merged into the run set before the
   next block is scanned, so a later block can only uncover positions
   above everything an earlier one emitted).  The emitted set and the
   final run state are both order-independent, which keeps this
   byte-compatible with the list-building wrapper below. *)
let ensure_scr t n =
  let cap = Array.length t.scr_lo in
  if n > cap then begin
    let ncap = Stdlib.max n (2 * cap) in
    let nlo = Array.make ncap 0 and nhi = Array.make ncap 0 in
    Array.blit t.scr_lo 0 nlo 0 cap;
    Array.blit t.scr_hi 0 nhi 0 cap;
    t.scr_lo <- nlo;
    t.scr_hi <- nhi
  end

let iter_feedback t ~cum_ack ~blocks ~on_ack ~on_sack ~on_lost =
  charge t "send.scoreboard.feedback";
  let n_acked = ref 0 and n_sacked = ref 0 and n_lost = ref 0 in
  let emit on a =
    let i = a land t.mask in
    let meta = Array.unsafe_get t.meta i in
    t.unsacked_bytes <- t.unsacked_bytes - (meta land size_mask);
    on ~seq:(ser_of t a)
      ~sent_at:(Array.unsafe_get t.first_sent i)
      ~was_retx:(meta lsr retx_shift > 0)
  in
  (* 1. Cumulative advance: every not-yet-SACKed position up to the
     (clipped) ack point is a fresh cover. *)
  let cum_advanced = Serial.( > ) cum_ack t.snd_una in
  if cum_advanced then begin
    let target = Stdlib.min (abs_of t cum_ack) t.nxt_abs in
    Runs.iter_gaps t.sacked t.una_abs target (fun gl gh ->
        for a = gl to gh - 1 do
          incr n_acked;
          emit on_ack a
        done);
    t.acked <- t.acked + (target - t.una_abs);
    Runs.trim_below t.sacked target;
    Runs.trim_below t.lost target;
    t.una_abs <- target;
    t.snd_una <- Serial.max t.snd_una (Serial.min cum_ack t.snd_nxt)
  end;
  (* 2. SACK coverage: the uncovered gaps of each (clipped) block are
     the newly SACKed positions; then the block merges into the run
     set in one splice.  The clipped runs go through the reusable
     scratch arrays, insertion-sorted by lower bound (stable, like the
     [List.sort] this replaces; real feedback carries at most a
     handful of blocks). *)
  let nclip = ref 0 in
  List.iter
    (fun (b : Blocks.t) ->
      let l = Stdlib.max (abs_of t b.block_start) t.una_abs in
      let h = Stdlib.min (abs_of t b.block_end) t.nxt_abs in
      if l < h then begin
        ensure_scr t (!nclip + 1);
        let j = ref !nclip in
        while !j > 0 && t.scr_lo.(!j - 1) > l do
          t.scr_lo.(!j) <- t.scr_lo.(!j - 1);
          t.scr_hi.(!j) <- t.scr_hi.(!j - 1);
          decr j
        done;
        t.scr_lo.(!j) <- l;
        t.scr_hi.(!j) <- h;
        incr nclip
      end)
    blocks;
  for k = 0 to !nclip - 1 do
    let l = t.scr_lo.(k) and h = t.scr_hi.(k) in
    Runs.iter_gaps t.sacked l h (fun gl gh ->
        for a = gl to gh - 1 do
          incr n_sacked;
          emit on_sack a
        done);
    Runs.remove t.lost l h;
    Runs.add t.sacked l h
  done;
  (* 3. Loss inference: a position is lost once [dupthresh] SACKed
     positions lie above it, i.e. everything below the dupthresh-th
     highest SACKed point that is neither SACKed nor already lost.
     The fresh runs reuse the same scratch (phase 2 is done with it),
     collected in ascending order. *)
  let nfresh = ref 0 in
  let p = Runs.kth_from_top t.sacked t.dupthresh in
  if p > t.una_abs then begin
    Runs.iter_gaps t.sacked t.una_abs p (fun gl gh ->
        Runs.iter_gaps t.lost gl gh (fun ll lh ->
            ensure_scr t (!nfresh + 1);
            t.scr_lo.(!nfresh) <- ll;
            t.scr_hi.(!nfresh) <- lh;
            incr nfresh));
    for k = 0 to !nfresh - 1 do
      Runs.add t.lost t.scr_lo.(k) t.scr_hi.(k)
    done;
    (* The reference walk marks from the top down; emit in the same
       descending order so traces stay byte-identical. *)
    if Trace.Sink.on t.trace then
      for k = !nfresh - 1 downto 0 do
        for a = t.scr_hi.(k) - 1 downto t.scr_lo.(k) do
          Trace.Sink.emit t.trace
            (Trace.Event.Loss_inferred
               { seq = ser_of t a; by = Trace.Event.I_dupthresh })
        done
      done;
    for k = 0 to !nfresh - 1 do
      for a = t.scr_lo.(k) to t.scr_hi.(k) - 1 do
        incr n_lost;
        on_lost (ser_of t a)
      done
    done
  end;
  {
    fb_acked = !n_acked;
    fb_sacked = !n_sacked;
    fb_lost = !n_lost;
    fb_cum_advanced = cum_advanced;
  }

let on_feedback t ~cum_ack ~blocks =
  let acked = ref [] and sacked = ref [] and lost = ref [] in
  let push acc ~seq ~sent_at ~was_retx =
    acc := { cov_seq = seq; cov_sent_at = sent_at; cov_was_retx = was_retx }
           :: !acc
  in
  let s =
    iter_feedback t ~cum_ack ~blocks ~on_ack:(push acked) ~on_sack:(push sacked)
      ~on_lost:(fun seq -> lost := seq :: !lost)
  in
  {
    newly_acked = List.rev !acked;
    newly_sacked = List.rev !sacked;
    newly_lost = List.rev !lost;
    cum_advanced = s.fb_cum_advanced;
  }

let lost_pending t =
  let acc = ref [] in
  for i = t.lost.Runs.len - 1 downto 0 do
    for a = t.lost.Runs.hi.(i) - 1 downto t.lost.Runs.lo.(i) do
      acc := ser_of t a :: !acc
    done
  done;
  !acc

let mark_expired t ~now ~timeout =
  (* The expired positions go through the feedback scratch (ascending);
     the common fire finds nothing expired and allocates nothing. *)
  let nfresh = ref 0 in
  Runs.iter_gaps t.sacked t.una_abs t.nxt_abs (fun gl gh ->
      Runs.iter_gaps t.lost gl gh (fun ll lh ->
          for a = ll to lh - 1 do
            if now -. t.last_sent.(a land t.mask) > timeout then begin
              ensure_scr t (!nfresh + 1);
              t.scr_lo.(!nfresh) <- a;
              incr nfresh;
              if Trace.Sink.on t.trace then
                Trace.Sink.emit t.trace
                  (Trace.Event.Loss_inferred
                     { seq = ser_of t a; by = Trace.Event.I_timeout })
            end
          done));
  let acc = ref [] in
  for k = !nfresh - 1 downto 0 do
    let a = t.scr_lo.(k) in
    Runs.add t.lost a (a + 1);
    acc := ser_of t a :: !acc
  done;
  !acc

let abandon_below t limit =
  let limit = Serial.min limit t.snd_nxt in
  if Serial.( > ) limit t.snd_una then begin
    let target = Stdlib.min (abs_of t limit) t.nxt_abs in
    Runs.iter_gaps t.sacked t.una_abs target (fun gl gh ->
        for a = gl to gh - 1 do
          t.unsacked_bytes <- t.unsacked_bytes - size_at t a
        done);
    Runs.trim_below t.sacked target;
    Runs.trim_below t.lost target;
    t.una_abs <- target;
    t.snd_una <- limit
  end

let tracked t a = a >= t.una_abs && a < t.nxt_abs

let retx_count t s =
  let a = abs_of t s in
  if tracked t a then t.meta.(a land t.mask) lsr retx_shift else 0

let status t s =
  let a = abs_of t s in
  if not (tracked t a) then `Untracked
  else if Runs.mem t.sacked a then `Sacked
  else if Runs.mem t.lost a then `Lost
  else `In_flight

let first_sent_at t s =
  let a = abs_of t s in
  if tracked t a then Some t.first_sent.(a land t.mask) else None

let outstanding t = t.nxt_abs - t.una_abs

let in_flight_bytes t = t.unsacked_bytes

let runs_held t = (t.sacked.Runs.len, t.lost.Runs.len)

let stats_sent t = t.sent
let stats_retx t = t.retx
let stats_acked t = t.acked
