(** Frozen per-entry reference implementation of {!Rcv_tracker}, kept as the
    differential-testing oracle for the run-length rewrite.

    Receiver-side reception tracking — the whole per-packet work of a
    QTP_light receiver.

    Maintains the cumulative acknowledgment point and the set of
    out-of-order ranges, and renders RFC 2018-style SACK feedback: the
    first reported block contains the most recently received segment,
    then the most recently changed other blocks, up to [max_blocks].

    Cost accounting: ["recv.light.packet"] is charged once per data
    packet and ["recv.light.feedback"] once per report — both O(1)
    amortised — so experiments can contrast this against the standard
    receiver's loss-history charges. *)

type t

val create : ?max_blocks:int -> ?cost:Stats.Cost.t -> unit -> t
(** [max_blocks] defaults to 4, the SACK-option budget of RFC 2018. *)

val on_data : t -> seq:Packet.Serial.t -> unit

val apply_fwd_point : t -> Packet.Serial.t -> unit
(** Honour a sender forward point: abandon holes below it, advancing the
    cumulative ack to at least that sequence number.  Keeps receiver
    state bounded when the sender runs partial or no reliability. *)

val cum_ack : t -> Packet.Serial.t
(** Next expected sequence number (0 initially). *)

val sack_blocks : t -> Blocks.t list
(** Blocks for the next report (normalised subset, recency-ordered,
    at most [max_blocks]). *)

val all_ranges : t -> Blocks.t list
(** Every out-of-order range currently held (normalised, ascending). *)

val highest_expected : t -> Packet.Serial.t
(** One past the highest sequence number received: the end of the last
    out-of-order range, or {!cum_ack} when there is none.  O(ranges),
    allocation-free. *)

val received : t -> Packet.Serial.t -> bool
(** Has this sequence number been received (cumulative or ranged)? *)

val packets : t -> int

val duplicates : t -> int
(** Data packets that were already covered when they arrived. *)

val test_only_skip_dup_check : bool ref
(** Deliberate-bug hook, for tests only (default [false]): disables the
    duplicate check in {!on_data}, so a duplicated or spuriously
    retransmitted segment corrupts the range list and the damage leaks
    into SACK reports.  The fuzz suite's negative test flips this to
    prove the harness detects (and shrinks) exactly this class of
    receiver bug. *)
