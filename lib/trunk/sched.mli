(** Intra-trunk scheduling: which users' bytes ride the next segment.

    The trunk's congestion controller decides {e when} a segment may go;
    this module decides {e whose} backlog fills it.  Two disciplines:

    - [Fifo]: admission order, chunk by chunk — one heavy user can
      monopolise the trunk;
    - [Drr]: deficit round robin over the backlogged users with
      per-user byte quanta scaled by integer weights — each
      continuously-backlogged user's service stays within one quantum
      plus one sub-frame of its weight-proportional share (the classic
      DRR bound), at O(1) scheduling work per allocation.

    Round state persists across segments: a user's unspent deficit
    carries to the next transmission opportunity, so the fairness bound
    holds over any segment boundary.  The differential battery checks
    the fast ring-based implementation against a naive reference
    rebuilt per allocation. *)

type kind = Fifo | Drr

val default_quantum : int
(** Default DRR byte quantum per turn and unit weight (1500 — one
    bottleneck packet's worth, so a round costs each backlogged user at
    most one segment of latency per competitor). *)

type t

val create : ?quantum:int -> ?weights:int array -> kind -> users:int -> unit -> t
(** [weights] (DRR only) scales each user's quantum; missing entries and
    values [< 1] count as 1.  Raises [Invalid_argument] when
    [users < 1] or [quantum < 1]. *)

val kind : t -> kind

val users : t -> int

val enqueue : t -> user:int -> int -> unit
(** Add backlog bytes for a user (admission). *)

val backlog : t -> user:int -> int

val total : t -> int
(** Total backlogged bytes across users. *)

val fill :
  t ->
  budget:int ->
  overhead:int ->
  cap:int ->
  f:(user:int -> take:int -> unit) ->
  int
(** Plan one segment: allocate sub-frames until the [budget] (payload
    bytes available in the segment) cannot fit [overhead + 1] more
    bytes or no backlog remains.  Each allocation costs
    [overhead + take] budget bytes with [1 <= take <= cap]; [f] is
    called in emission order and the corresponding backlog is consumed.
    Returns the budget bytes used. *)
