type kind = Fifo | Drr

let default_quantum = 1500

(* Growable circular int queue — the DRR active ring and both FIFO
   chunk columns. *)
module Iq = struct
  type t = { mutable buf : int array; mutable head : int; mutable len : int }

  let create () = { buf = Array.make 16 0; head = 0; len = 0 }

  let length q = q.len

  let grow q =
    let cap = Array.length q.buf in
    let nbuf = Array.make (2 * cap) 0 in
    for i = 0 to q.len - 1 do
      nbuf.(i) <- q.buf.((q.head + i) land (cap - 1))
    done;
    q.buf <- nbuf;
    q.head <- 0

  let push q x =
    if q.len = Array.length q.buf then grow q;
    q.buf.((q.head + q.len) land (Array.length q.buf - 1)) <- x;
    q.len <- q.len + 1

  let peek q = q.buf.(q.head)

  let pop q =
    let x = peek q in
    q.head <- (q.head + 1) land (Array.length q.buf - 1);
    q.len <- q.len - 1;
    if q.len = 0 then q.head <- 0;
    x

  (* Mutate the head element in place (FIFO partial-chunk consumption). *)
  let set_head q x = q.buf.(q.head) <- x
end

type t = {
  knd : kind;
  n : int;
  quantum : int;
  weights : int array;
  backlog : int array;
  deficit : int array;  (* DRR *)
  active : bool array;  (* user is in the DRR ring *)
  ring : Iq.t;  (* DRR: backlogged users in round order *)
  fifo_user : Iq.t;  (* FIFO: admission chunks, parallel columns *)
  fifo_bytes : Iq.t;
  mutable fifo_tail_user : int;  (* last pushed chunk's user, -1 if none *)
  mutable head_fresh : bool;  (* ring head still owed its quantum top-up *)
  mutable total : int;
}

let create ?(quantum = default_quantum) ?weights knd ~users () =
  if users < 1 then invalid_arg "Trunk.Sched: users < 1";
  if quantum < 1 then invalid_arg "Trunk.Sched: quantum < 1";
  let w = Array.make users 1 in
  (match weights with
  | Some ws ->
      Array.iteri (fun i x -> if i < users && x >= 1 then w.(i) <- x) ws
  | None -> ());
  {
    knd;
    n = users;
    quantum;
    weights = w;
    backlog = Array.make users 0;
    deficit = Array.make users 0;
    active = Array.make users false;
    ring = Iq.create ();
    fifo_user = Iq.create ();
    fifo_bytes = Iq.create ();
    fifo_tail_user = -1;
    head_fresh = true;
    total = 0;
  }

let kind t = t.knd

let users t = t.n

let backlog t ~user = t.backlog.(user)

let total t = t.total

let enqueue t ~user bytes =
  if user < 0 || user >= t.n then invalid_arg "Trunk.Sched: user out of range";
  if bytes < 0 then invalid_arg "Trunk.Sched: negative bytes";
  if bytes > 0 then begin
    t.backlog.(user) <- t.backlog.(user) + bytes;
    t.total <- t.total + bytes;
    match t.knd with
    | Drr ->
        if not t.active.(user) then begin
          if Iq.length t.ring = 0 then t.head_fresh <- true;
          Iq.push t.ring user;
          t.active.(user) <- true
        end
    | Fifo ->
        (* Coalesce with the tail chunk when the same user keeps
           admitting — admission order is preserved either way. *)
        if t.fifo_tail_user = user && Iq.length t.fifo_user > 0 then begin
          let cap = Array.length t.fifo_bytes.Iq.buf in
          let tail =
            (t.fifo_bytes.Iq.head + t.fifo_bytes.Iq.len - 1) land (cap - 1)
          in
          t.fifo_bytes.Iq.buf.(tail) <- t.fifo_bytes.Iq.buf.(tail) + bytes
        end
        else begin
          Iq.push t.fifo_user user;
          Iq.push t.fifo_bytes bytes;
          t.fifo_tail_user <- user
        end
  end

let take_bytes t ~user take =
  t.backlog.(user) <- t.backlog.(user) - take;
  t.total <- t.total - take

let fill_drr t ~budget ~overhead ~cap ~f =
  let used = ref 0 in
  let left = ref budget in
  let stop = ref false in
  while (not !stop) && Iq.length t.ring > 0 && !left >= overhead + 1 do
    let u = Iq.peek t.ring in
    if t.head_fresh then begin
      t.deficit.(u) <- t.deficit.(u) + (t.quantum * t.weights.(u));
      t.head_fresh <- false
    end;
    let take =
      Stdlib.min
        (Stdlib.min t.backlog.(u) t.deficit.(u))
        (Stdlib.min cap (!left - overhead))
    in
    if take >= 1 then begin
      f ~user:u ~take;
      take_bytes t ~user:u take;
      t.deficit.(u) <- t.deficit.(u) - take;
      used := !used + overhead + take;
      left := !left - (overhead + take)
    end;
    if t.backlog.(u) = 0 then begin
      (* Queue drained: per DRR, the unspent deficit is forfeited so an
         idle user cannot bank credit. *)
      t.deficit.(u) <- 0;
      ignore (Iq.pop t.ring);
      t.active.(u) <- false;
      t.head_fresh <- true
    end
    else if t.deficit.(u) = 0 then begin
      (* Turn spent: rotate to the tail, next head starts fresh. *)
      ignore (Iq.pop t.ring);
      Iq.push t.ring u;
      t.head_fresh <- true
    end
    else if take = 0 then stop := true
    (* else: same user, another sub-frame (the cap split this turn) *)
  done;
  !used

let fill_fifo t ~budget ~overhead ~cap ~f =
  let used = ref 0 in
  let left = ref budget in
  while Iq.length t.fifo_user > 0 && !left >= overhead + 1 do
    let u = Iq.peek t.fifo_user in
    let avail = Iq.peek t.fifo_bytes in
    let take = Stdlib.min avail (Stdlib.min cap (!left - overhead)) in
    f ~user:u ~take;
    take_bytes t ~user:u take;
    if take = avail then begin
      ignore (Iq.pop t.fifo_user);
      ignore (Iq.pop t.fifo_bytes);
      if Iq.length t.fifo_user = 0 then t.fifo_tail_user <- -1
    end
    else Iq.set_head t.fifo_bytes (avail - take);
    used := !used + overhead + take;
    left := !left - (overhead + take)
  done;
  !used

let fill t ~budget ~overhead ~cap ~f =
  if overhead < 0 || cap < 1 then invalid_arg "Trunk.Sched.fill";
  match t.knd with
  | Drr -> fill_drr t ~budget ~overhead ~cap ~f
  | Fifo -> fill_fifo t ~budget ~overhead ~cap ~f
