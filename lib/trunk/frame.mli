(** Sub-frame codec for trunk segments.

    A trunk segment's payload is a sequence of length-prefixed
    sub-frames, one per (user, chunk) allocation the intra-trunk
    scheduler made for that segment.  The header is 6 bytes:

    {v
      0      1      2      3      4      5
      +------+------+------+------+------+------+
      |     user id (24-bit BE)  | len (16 BE)  | check |
      +------+------+------+------+------+------+
    v}

    [check] is the XOR of the five preceding bytes with a fixed magic,
    so a parser landing mid-payload (after a truncated or garbage
    header) can resynchronise by scanning forward for the next byte
    position that validates — rejected bytes are reported, subsequent
    frames still parse.  Sub-frames never straddle segments: every
    segment's payload is self-contained, so a lost segment costs only
    its own frames and never desyncs a neighbour.

    Encoding mirrors {!Packet.Wire.Packed}: header and payload are
    written in place into a caller (or domain-scratch) buffer, zero
    allocations on the batch-encode fast path. *)

val header_bytes : int
(** 6 — per-sub-frame framing overhead. *)

val default_frame_cap : int
(** Default maximum user payload bytes per sub-frame (512).  Caps how
    long one user can monopolise a segment and bounds the resync scan
    after a corrupt header. *)

val max_user : int
(** Highest encodable user id (24-bit space). *)

val max_len : int
(** Highest encodable sub-frame payload length (16-bit space). *)

val measure : len:int -> int
(** Bytes one sub-frame with [len] payload bytes occupies. *)

val put_header : Bytes.t -> pos:int -> user:int -> len:int -> unit
(** Write the 6-byte header for a [len]-byte sub-frame of [user] at
    [pos].  The caller blits the payload at [pos + header_bytes].
    Raises [Invalid_argument] on out-of-range user/len. *)

val encode_into :
  Bytes.t ->
  pos:int ->
  user:int ->
  src:Bytes.t ->
  src_pos:int ->
  len:int ->
  int
(** Header + payload blit in one call; returns [measure ~len]. *)

val valid_at : Bytes.t -> pos:int -> limit:int -> bool
(** Does a structurally valid sub-frame (header check passes, [len >= 1],
    payload fits before [limit]) start at [pos]? *)

val user : Bytes.t -> pos:int -> int

val length : Bytes.t -> pos:int -> int

val iter :
  Bytes.t ->
  pos:int ->
  len:int ->
  frame:(user:int -> off:int -> len:int -> unit) ->
  junk:(bytes:int -> unit) ->
  unit
(** Parse every sub-frame in [\[pos, pos+len)].  [frame] receives each
    valid sub-frame's user and payload position; on an invalid header
    the parser advances one byte at a time until the next position
    validates, reporting each maximal skipped run through [junk].  A
    truncated tail is junk, never an exception. *)

val scratch : unit -> Bytes.t
(** A 64 KiB domain-local segment-packing buffer (one per domain, so
    parallel suites each batch-encode allocation-free). *)
