type admit_sample = {
  au_user : int;
  au_offered : int;
  au_accepted : int;
  au_backlog : int;
}

type segment_sample = {
  sg_index : int;
  sg_frames : int;
  sg_payload : int;
  sg_budget : int;
}

type deliver_sample = { dv_user : int; dv_bytes : int }

type hooks = {
  on_admit : admit_sample -> unit;
  on_segment : segment_sample -> unit;
  on_user_deliver : deliver_sample -> unit;
}

(* Domain-local like Qtp.Inspect: parallel suites get independent
   registries, one trunk run at a time within a domain. *)
let current : hooks option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let install h = Domain.DLS.get current := Some h

let clear () = Domain.DLS.get current := None

let hooks () = !(Domain.DLS.get current)
