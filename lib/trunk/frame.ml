let header_bytes = 6

let default_frame_cap = 512

let max_user = (1 lsl 24) - 1

let max_len = 0xFFFF

(* The check byte folds every header field, so a one-byte slip lands on
   a position whose check almost never validates; the magic keeps an
   all-zero window from self-validating. *)
let check_magic = 0x5A

let measure ~len = header_bytes + len

let[@inline always] check_of b0 b1 b2 b3 b4 =
  b0 lxor b1 lxor b2 lxor b3 lxor b4 lxor check_magic

let put_header buf ~pos ~user ~len =
  if user < 0 || user > max_user then invalid_arg "Trunk.Frame: user id";
  if len < 1 || len > max_len then invalid_arg "Trunk.Frame: length";
  if pos < 0 || pos + header_bytes > Bytes.length buf then
    invalid_arg "Trunk.Frame: header does not fit";
  let b0 = (user lsr 16) land 0xFF
  and b1 = (user lsr 8) land 0xFF
  and b2 = user land 0xFF
  and b3 = (len lsr 8) land 0xFF
  and b4 = len land 0xFF in
  Bytes.unsafe_set buf pos (Char.unsafe_chr b0);
  Bytes.unsafe_set buf (pos + 1) (Char.unsafe_chr b1);
  Bytes.unsafe_set buf (pos + 2) (Char.unsafe_chr b2);
  Bytes.unsafe_set buf (pos + 3) (Char.unsafe_chr b3);
  Bytes.unsafe_set buf (pos + 4) (Char.unsafe_chr b4);
  Bytes.unsafe_set buf (pos + 5) (Char.unsafe_chr (check_of b0 b1 b2 b3 b4))

let encode_into buf ~pos ~user ~src ~src_pos ~len =
  put_header buf ~pos ~user ~len;
  if pos + header_bytes + len > Bytes.length buf then
    invalid_arg "Trunk.Frame: payload does not fit";
  Bytes.blit src src_pos buf (pos + header_bytes) len;
  measure ~len

let[@inline always] byte buf i = Char.code (Bytes.unsafe_get buf i)

let user buf ~pos =
  (byte buf pos lsl 16) lor (byte buf (pos + 1) lsl 8) lor byte buf (pos + 2)

let length buf ~pos = (byte buf (pos + 3) lsl 8) lor byte buf (pos + 4)

let valid_at buf ~pos ~limit =
  pos >= 0
  && pos + header_bytes <= limit
  && limit <= Bytes.length buf
  &&
  let b0 = byte buf pos
  and b1 = byte buf (pos + 1)
  and b2 = byte buf (pos + 2)
  and b3 = byte buf (pos + 3)
  and b4 = byte buf (pos + 4) in
  byte buf (pos + 5) = check_of b0 b1 b2 b3 b4
  &&
  let len = (b3 lsl 8) lor b4 in
  len >= 1 && pos + header_bytes + len <= limit

(* Top-level tail recursion over immediate ints keeps the demux loop
   free of heap traffic — a ref cell, a flush closure, or even a local
   [let rec] capturing the callbacks would charge every segment
   delivery an allocation (without flambda they are all real). *)
let rec iter_go buf limit frame junk p junk_run =
  if p >= limit then begin
    if junk_run > 0 then junk ~bytes:junk_run
  end
  else if valid_at buf ~pos:p ~limit then begin
    if junk_run > 0 then junk ~bytes:junk_run;
    let u = user buf ~pos:p and l = length buf ~pos:p in
    frame ~user:u ~off:(p + header_bytes) ~len:l;
    iter_go buf limit frame junk (p + header_bytes + l) 0
  end
  else iter_go buf limit frame junk (p + 1) (junk_run + 1)

let iter buf ~pos ~len ~frame ~junk = iter_go buf (pos + len) frame junk pos 0

let[@vtp.alloc_ok] scratch_key = Domain.DLS.new_key (fun () -> Bytes.create 65536)

let scratch () = Domain.DLS.get scratch_key
