type config = {
  users : int;
  discipline : Sched.kind;
  quantum : int;
  frame_cap : int;
  per_user_cap : int;
  audit : bool;
}

let config ?(discipline = Sched.Drr) ?(quantum = Sched.default_quantum)
    ?(frame_cap = Frame.default_frame_cap) ?(per_user_cap = 65536)
    ?(audit = true) ~users () =
  if users < 1 || users > Frame.max_user + 1 then
    invalid_arg "Trunk.Mux: users out of range";
  if quantum < 1 then invalid_arg "Trunk.Mux: quantum < 1";
  if frame_cap < 1 || frame_cap > Frame.max_len then
    invalid_arg "Trunk.Mux: frame_cap out of range";
  if per_user_cap < 1 then invalid_arg "Trunk.Mux: per_user_cap < 1";
  { users; discipline; quantum; frame_cap; per_user_cap; audit }

(* Conservation digests: a chunk-invariant running hash of one user's
   byte stream at a station.  Bytes gather little-endian into a pending
   word; every full 8-byte word folds djb2-style into the accumulator.
   The fold is a pure function of the byte stream — slice boundaries
   never matter, so the three stations digest identical streams to
   identical values even though admission hashes 4 KiB offers, shipping
   hashes sub-frame takes and delivery hashes parsed frames.  Word-at-
   a-time keeps the bookkeeping to a fraction of the segment path's
   copy cost (a per-byte fold costed more than the blits it audited). *)
module Dig = struct
  type t = {
    acc : int array;  (* folded whole words *)
    pend : int array;  (* gathered tail bytes, little-endian *)
    pk : int array;  (* how many tail bytes are gathered, 0..7 *)
  }

  let seed = 5381

  let create n =
    { acc = Array.make n seed; pend = Array.make n 0; pk = Array.make n 0 }

  let mix acc w = (((acc lsl 5) + acc) lxor w) land max_int

  let update d u buf ~pos ~len =
    let acc = ref d.acc.(u) in
    let pend = ref d.pend.(u) in
    let pk = ref d.pk.(u) in
    let i = ref pos in
    let stop = pos + len in
    while !pk <> 0 && !i < stop do
      pend := !pend lor (Char.code (Bytes.unsafe_get buf !i) lsl (8 * !pk));
      incr i;
      pk := (!pk + 1) land 7;
      if !pk = 0 then begin
        acc := mix !acc !pend;
        pend := 0
      end
    done;
    while stop - !i >= 8 do
      let b k = Char.code (Bytes.unsafe_get buf (!i + k)) in
      let w =
        b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) lor (b 4 lsl 32)
        lor (b 5 lsl 40) lor (b 6 lsl 48) lor (b 7 lsl 56)
      in
      acc := mix !acc w;
      i := !i + 8
    done;
    while !i < stop do
      pend := !pend lor (Char.code (Bytes.unsafe_get buf !i) lsl (8 * !pk));
      incr i;
      incr pk
    done;
    d.acc.(u) <- !acc;
    d.pend.(u) <- !pend;
    d.pk.(u) <- !pk

  (* Finalised view: equal streams give equal values; the tail state is
     folded in so "abc" and "abc" + pending junk can't collide by
     accident of timing. *)
  let value d u = mix (mix d.acc.(u) d.pend.(u)) d.pk.(u)
end

(* Per-user admission queue: a compacting byte FIFO.  Bytes.blit is
   memmove-safe, so compaction within the same buffer is fine. *)
module Q = struct
  type t = { mutable buf : Bytes.t; mutable head : int; mutable len : int }

  let create () = { buf = Bytes.create 256; head = 0; len = 0 }

  let length q = q.len

  let ensure q extra =
    let need = q.len + extra in
    if q.head + need > Bytes.length q.buf then
      if need <= Bytes.length q.buf then begin
        Bytes.blit q.buf q.head q.buf 0 q.len;
        q.head <- 0
      end
      else begin
        let cap = ref (Bytes.length q.buf) in
        while !cap < need do
          cap := !cap * 2
        done;
        let nb = Bytes.create !cap in
        Bytes.blit q.buf q.head nb 0 q.len;
        q.buf <- nb;
        q.head <- 0
      end

  let append q src pos len =
    ensure q len;
    Bytes.blit src pos q.buf (q.head + q.len) len;
    q.len <- q.len + len

  let pop_into q dst ~pos ~len =
    Bytes.blit q.buf q.head dst pos len;
    q.head <- q.head + len;
    q.len <- q.len - len;
    if q.len = 0 then q.head <- 0
end

type t = {
  cfg : config;
  sched : Sched.t;
  queues : Q.t array;
  src : Qtp.Source.t;
  mutable conn : Qtp.Connection.t option;
  mutable seg_payload : int;  (* 0 until attached *)
  admitted : int array;
  shipped : int array;
  delivered : int array;
  adm_dig : Dig.t;
  shp_dig : Dig.t;
  dlv_dig : Dig.t;
  mutable segs : Bytes.t array;  (* k-th packed segment, freed on delivery *)
  mutable seg_lens : int array;  (* packed bytes of segs.(k): buffers are
                                    sized for the full budget up front so
                                    pack can write in place without a
                                    trailing Bytes.sub copy *)
  mutable nsegs : int;
  mutable rejected : int;
  mutable frames_packed : int;
  mutable junk : int;
  mutable on_data : (user:int -> buf:Bytes.t -> pos:int -> len:int -> unit) option;
}

let pack t =
  if t.seg_payload = 0 || Sched.total t.sched = 0 then false
  else begin
    let budget = t.seg_payload in
    let buf = Bytes.create budget in
    let wpos = ref 0 in
    let frames = ref 0 in
    let used =
      Sched.fill t.sched ~budget ~overhead:Frame.header_bytes
        ~cap:t.cfg.frame_cap ~f:(fun ~user ~take ->
          Frame.put_header buf ~pos:!wpos ~user ~len:take;
          let ppos = !wpos + Frame.header_bytes in
          Q.pop_into t.queues.(user) buf ~pos:ppos ~len:take;
          t.shipped.(user) <- t.shipped.(user) + take;
          if t.cfg.audit then Dig.update t.shp_dig user buf ~pos:ppos ~len:take;
          wpos := ppos + take;
          incr frames)
    in
    if used = 0 then false
    else begin
      let k = t.nsegs in
      if k = Array.length t.segs then begin
        let nb = Array.make (2 * Array.length t.segs) Bytes.empty in
        Array.blit t.segs 0 nb 0 t.nsegs;
        t.segs <- nb;
        let nl = Array.make (2 * Array.length t.seg_lens) 0 in
        Array.blit t.seg_lens 0 nl 0 t.nsegs;
        t.seg_lens <- nl
      end;
      t.segs.(k) <- buf;
      t.seg_lens.(k) <- used;
      t.nsegs <- k + 1;
      t.frames_packed <- t.frames_packed + !frames;
      (match Tap.hooks () with
      | Some h ->
          h.Tap.on_segment
            {
              Tap.sg_index = k;
              sg_frames = !frames;
              sg_payload = used;
              sg_budget = budget;
            }
      | None -> ());
      true
    end
  end

let deliver t ~seq =
  let k = Packet.Serial.to_int seq in
  if k >= 0 && k < t.nsegs then begin
    let seg = t.segs.(k) in
    let seg_len = t.seg_lens.(k) in
    if seg_len > 0 then begin
      Frame.iter seg ~pos:0 ~len:seg_len
        ~frame:(fun ~user ~off ~len ->
          t.delivered.(user) <- t.delivered.(user) + len;
          if t.cfg.audit then Dig.update t.dlv_dig user seg ~pos:off ~len;
          (match Tap.hooks () with
          | Some h ->
              h.Tap.on_user_deliver { Tap.dv_user = user; dv_bytes = len }
          | None -> ());
          match t.on_data with
          | Some f -> f ~user ~buf:seg ~pos:off ~len
          | None -> ())
        ~junk:(fun ~bytes -> t.junk <- t.junk + bytes);
      (* Exactly-once: reassembly delivers each sequence once; freeing
         the slot also makes any accounting bug loud instead of a
         silent double count. *)
      t.segs.(k) <- Bytes.empty;
      t.seg_lens.(k) <- 0
    end
  end

let create ?weights cfg =
  let t_ref = ref None in
  let src =
    Qtp.Source.pull
      ~take:(fun () -> match !t_ref with Some t -> pack t | None -> false)
      ()
  in
  let t =
    {
      cfg;
      sched =
        Sched.create ~quantum:cfg.quantum ?weights cfg.discipline
          ~users:cfg.users ();
      queues = Array.init cfg.users (fun _ -> Q.create ());
      src;
      conn = None;
      seg_payload = 0;
      admitted = Array.make cfg.users 0;
      shipped = Array.make cfg.users 0;
      delivered = Array.make cfg.users 0;
      adm_dig = Dig.create cfg.users;
      shp_dig = Dig.create cfg.users;
      dlv_dig = Dig.create cfg.users;
      segs = Array.make 64 Bytes.empty;
      seg_lens = Array.make 64 0;
      nsegs = 0;
      rejected = 0;
      frames_packed = 0;
      junk = 0;
      on_data = None;
    }
  in
  t_ref := Some t;
  t

let source t = t.src

let attach t ~conn ~seg_payload =
  if seg_payload <= Frame.header_bytes then
    invalid_arg "Trunk.Mux.attach: seg_payload must exceed frame header";
  t.seg_payload <- Stdlib.min seg_payload (Bytes.length (Frame.scratch ()));
  t.conn <- Some conn;
  Qtp.Connection.set_on_deliver conn (fun ~seq ~size:_ -> deliver t ~seq)

let connection t = t.conn

let admit t ~user ~src ~pos ~len =
  if user < 0 || user >= t.cfg.users then
    invalid_arg "Trunk.Mux.admit: user out of range";
  if len < 0 || pos < 0 || pos + len > Bytes.length src then
    invalid_arg "Trunk.Mux.admit: bad slice";
  let space = t.cfg.per_user_cap - Q.length t.queues.(user) in
  let acc = Stdlib.min len (Stdlib.max 0 space) in
  if acc > 0 then begin
    Q.append t.queues.(user) src pos acc;
    t.admitted.(user) <- t.admitted.(user) + acc;
    if t.cfg.audit then Dig.update t.adm_dig user src ~pos ~len:acc;
    Sched.enqueue t.sched ~user acc;
    Qtp.Source.wake t.src
  end;
  t.rejected <- t.rejected + (len - acc);
  (match Tap.hooks () with
  | Some h ->
      h.Tap.on_admit
        {
          Tap.au_user = user;
          au_offered = len;
          au_accepted = acc;
          au_backlog = Q.length t.queues.(user);
        }
  | None -> ());
  acc

let set_on_data t f = t.on_data <- Some f

let feed t ~sim ~workloads ?(chunk = 4096) ?(period = 0.05) ?(seed = 0)
    ~stop_at () =
  if Array.length workloads > t.cfg.users then
    invalid_arg "Trunk.Mux.feed: more workloads than users";
  if chunk < 1 || period <= 0.0 then invalid_arg "Trunk.Mux.feed";
  let n = Array.length workloads in
  let sent = Array.make t.cfg.users 0 in
  let scratch = Bytes.create chunk in
  let rec tick () =
    if Engine.Sim.now sim < stop_at then begin
      let pending = ref false in
      for u = 0 to n - 1 do
        let remaining = workloads.(u) - sent.(u) in
        if remaining > 0 then begin
          (* Only render the bytes admission has room for — a
             backpressured user would otherwise regenerate (and then
             discard) a full chunk every tick. *)
          let space = t.cfg.per_user_cap - Q.length t.queues.(u) in
          let want = Stdlib.min (Stdlib.min chunk remaining) space in
          if want > 0 then begin
            (* Byte o of user u's stream is (seed + u*131 + o*31) mod 256;
               stepping the accumulator by 31 keeps the render loop free
               of per-byte multiplies. *)
            let b = ref (seed + (u * 131) + (sent.(u) * 31)) in
            for i = 0 to want - 1 do
              Bytes.unsafe_set scratch i (Char.unsafe_chr (!b land 0xff));
              b := !b + 31
            done;
            let acc = admit t ~user:u ~src:scratch ~pos:0 ~len:want in
            sent.(u) <- sent.(u) + acc
          end;
          if sent.(u) < workloads.(u) then pending := true
        end
      done;
      if !pending then Engine.Sim.post_after sim period tick
    end
  in
  Engine.Sim.post_after sim 0.0 tick;
  sent

let users t = t.cfg.users

let backlog t = Sched.total t.sched

let backlog_user t ~user = Q.length t.queues.(user)

let admitted_bytes t ~user = t.admitted.(user)

let shipped_bytes t ~user = t.shipped.(user)

let delivered_bytes t ~user = t.delivered.(user)

let admit_digest t ~user = Dig.value t.adm_dig user

let ship_digest t ~user = Dig.value t.shp_dig user

let deliver_digest t ~user = Dig.value t.dlv_dig user

let delivered_per_user t = Array.map float_of_int t.delivered

let segments_packed t = t.nsegs

let frames_packed t = t.frames_packed

let rejected t = t.rejected

let junk_bytes t = t.junk

let check_conservation t =
  let r = ref (Ok ()) in
  for u = t.cfg.users - 1 downto 0 do
    let adm = Dig.value t.adm_dig u
    and shp = Dig.value t.shp_dig u
    and dlv = Dig.value t.dlv_dig u in
    if t.delivered.(u) <> t.shipped.(u) || dlv <> shp then
      r :=
        Error
          (Printf.sprintf
             "user %d: shipped %dB digest %x but delivered %dB digest %x" u
             t.shipped.(u) shp t.delivered.(u) dlv)
    else if
      Q.length t.queues.(u) = 0
      && (t.admitted.(u) <> t.shipped.(u) || adm <> shp)
    then
      r :=
        Error
          (Printf.sprintf
             "user %d: drained queue but admitted %dB digest %x vs shipped \
              %dB digest %x"
             u t.admitted.(u) adm t.shipped.(u) shp)
  done;
  if t.junk > 0 && Result.is_ok !r then
    r := Error (Printf.sprintf "parser skipped %d junk bytes" t.junk);
  !r
