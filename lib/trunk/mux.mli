(** The trunk multiplexer: N user micro-flows over ONE gTFRC-controlled
    connection (TCP-trunking, Kung & Wang, applied to VTP).

    Instead of opening a congestion-controlled connection per user — at
    which point short flows never leave slow start and the negotiated
    AF floor [g] fragments into per-flow crumbs — a trunk front-ends
    the users: bytes are admitted into per-user queues, an intra-trunk
    scheduler ({!Sched}) packs them into length-prefixed sub-frames
    ({!Frame}) batched into each trunk segment, and the single
    underlying {!Qtp.Connection} (typically QTP_AF with full
    reliability) carries the aggregate at the negotiated rate.  On the
    receiving side, segments are demultiplexed back into per-user
    streams in admission order.

    {2 Data path}

    The simulator moves no payload bytes on the wire, so the trunk
    carries user bytes out-of-band alongside the simulated connection:
    the k-th segment packed by a successful source [take] corresponds
    exactly to the k-th fresh wire sequence (retransmissions re-send a
    recorded segment; the handshake consumes no takes).  The sender
    stores each packed segment; {!Qtp.Connection.set_on_deliver}
    surfaces the in-order delivery of sequence k, at which point the
    stored bytes are parsed with {!Frame.iter} and handed to the
    per-user delivery callback, exactly once.

    Under full reliability every packed byte is eventually delivered,
    byte-identical — the conservation oracle checks the per-user byte
    counts and running digests at three stations (admitted, shipped,
    delivered). *)

type config = {
  users : int;
  discipline : Sched.kind;
  quantum : int;  (** DRR byte quantum (unit weight) *)
  frame_cap : int;  (** max user payload bytes per sub-frame *)
  per_user_cap : int;  (** admission queue bound per user, bytes *)
  audit : bool;  (** maintain per-station conservation digests *)
}

val config :
  ?discipline:Sched.kind ->
  ?quantum:int ->
  ?frame_cap:int ->
  ?per_user_cap:int ->
  ?audit:bool ->
  users:int ->
  unit ->
  config
(** Defaults: [Drr], {!Sched.default_quantum}, {!Frame.default_frame_cap},
    64 KiB per-user cap, [audit] on.  Raises [Invalid_argument] on
    out-of-range values ([users] within {!Frame.max_user}, [frame_cap]
    within {!Frame.max_len}).

    [audit] keeps the three per-user station digests (admitted /
    shipped / delivered) up to date so {!check_conservation} can verify
    byte-identical delivery; tests and the fuzz band run with it on.
    Like the experiments' unchecked-by-default invariant mode, raw
    benchmarks may turn it off: the digest passes audit the trunk
    rather than operate it, and the per-flow arm being priced against
    carries no payload bytes at all.  With [audit = false] the byte
    {e counts} are still tracked and checked. *)

type t

val create : ?weights:int array -> config -> t
(** Build the mux and its pull {!Qtp.Source.t}.  [weights] scales DRR
    quanta per user (missing / [< 1] entries count as 1). *)

val source : t -> Qtp.Source.t
(** The source to hand to {!Qtp.Connection.create} — the trunk packs a
    segment on demand at each transmission opportunity. *)

val attach : t -> conn:Qtp.Connection.t -> seg_payload:int -> unit
(** Bind the mux to its connection: sets the per-segment payload budget
    (the connection's [packet_size - data-header bytes]) and installs
    the delivery tap.  Raises [Invalid_argument] if [seg_payload] is
    not strictly larger than {!Frame.header_bytes}. *)

val connection : t -> Qtp.Connection.t option

val admit : t -> user:int -> src:Bytes.t -> pos:int -> len:int -> int
(** Offer [len] bytes from a user; returns how many were accepted
    (clipped to the user's remaining [per_user_cap] space — the rest is
    counted in {!rejected} and the caller may retry later).  Accepted
    bytes join the user's queue, the scheduler backlog, and the
    admitted digest; the connection is woken. *)

val set_on_data : t -> (user:int -> buf:Bytes.t -> pos:int -> len:int -> unit) -> unit
(** Per-user delivery callback: [buf.[pos .. pos+len)] is the delivered
    sub-frame payload (read-only; valid only during the call). *)

val feed :
  t ->
  sim:Engine.Sim.t ->
  workloads:int array ->
  ?chunk:int ->
  ?period:float ->
  ?seed:int ->
  stop_at:float ->
  unit ->
  int array
(** Drive the trunk from deterministic synthetic workloads:
    [workloads.(u)] total bytes for user [u], admitted in [chunk]-byte
    (default 4096) offers every [period] seconds (default 0.05),
    respecting admission backpressure, until each workload is fully
    admitted or the simulation passes [stop_at].  Byte at offset [o] of
    user [u] is [(seed + u*131 + o*31) land 0xff], so content is a pure
    function of (seed, user, offset) — digests are reproducible.
    Returns the live per-user admitted-so-far array. *)

(** {2 Accounting} *)

val users : t -> int

val backlog : t -> int
(** Total queued bytes across users. *)

val backlog_user : t -> user:int -> int
val admitted_bytes : t -> user:int -> int
val shipped_bytes : t -> user:int -> int
val delivered_bytes : t -> user:int -> int
val admit_digest : t -> user:int -> int
val ship_digest : t -> user:int -> int
val deliver_digest : t -> user:int -> int

val delivered_per_user : t -> float array
(** Per-user delivered byte counts as floats ({!Stats.Fairness.jain}
    input). *)

val segments_packed : t -> int
val frames_packed : t -> int

val rejected : t -> int
(** Offered bytes refused by admission control. *)

val junk_bytes : t -> int
(** Bytes the receive-side parser skipped while resynchronising — any
    non-zero value in a clean run is a codec bug. *)

val check_conservation : t -> (unit, string) result
(** The conservation oracle: for every user, delivered bytes and digest
    must equal shipped (guaranteed under full reliability once the
    connection closed cleanly), and — when the user's queue drained —
    admitted must equal shipped too.  [Error] describes the first
    mismatching user. *)
