(** Trunk observability hooks, mirroring {!Qtp.Inspect}.

    When installed (experiment / fuzz harness), the trunk reports every
    admission decision, every packed segment and every per-user delivery
    — the accounting a checker needs to assert admission backpressure
    and byte conservation without reaching into mux internals.  The
    registry is domain-local like {!Qtp.Inspect}: parallel suites each
    install their own hooks; within a domain, one trunk run at a time. *)

type admit_sample = {
  au_user : int;
  au_offered : int;  (** bytes the application tried to admit *)
  au_accepted : int;  (** bytes actually queued (cap backpressure) *)
  au_backlog : int;  (** user's queued bytes after the admission *)
}

type segment_sample = {
  sg_index : int;  (** packing ordinal == fresh wire sequence number *)
  sg_frames : int;  (** sub-frames packed into this segment *)
  sg_payload : int;  (** bytes used (headers + user payload) *)
  sg_budget : int;  (** segment payload budget offered to the scheduler *)
}

type deliver_sample = {
  dv_user : int;
  dv_bytes : int;  (** user payload bytes in the delivered sub-frame *)
}

type hooks = {
  on_admit : admit_sample -> unit;
  on_segment : segment_sample -> unit;
  on_user_deliver : deliver_sample -> unit;
}

val install : hooks -> unit

val clear : unit -> unit

val hooks : unit -> hooks option
