type entry = { name : string; descr : string; scenario : Scenario.t }

(* Headline scenarios are hand-built (not generated): the AF assurance
   and QTP_light setups the paper's tables rest on, with durations
   short enough to keep committed traces small. *)

let af_headline =
  {
    name = "af_headline";
    descr = "two QTP_AF flows over an AF dumbbell (80% committed)";
    scenario =
      {
        Scenario.seed = 9001;
        shape = Scenario.Dumbbell 2;
        rate_mbps = 10.0;
        delay_ms = 30.0;
        buffer_pkts = 85;
        red = true;
        loss = Scenario.Clean;
        mangle = Netsim.Mangler.none;
        mangle_reverse = false;
        profile = Scenario.P_af 0.8;
        workload = Scenario.Greedy;
        background = true;
        duration = 2.0;
        handover = None;
        trunk = None;
      };
  }

let light_headline =
  {
    name = "light_headline";
    descr = "QTP_light (full reliability) over a 1% Bernoulli-lossy path";
    scenario =
      {
        Scenario.seed = 9002;
        shape = Scenario.Dumbbell 1;
        rate_mbps = 6.0;
        delay_ms = 40.0;
        buffer_pkts = 60;
        red = false;
        loss = Scenario.Bernoulli 0.01;
        mangle = Netsim.Mangler.none;
        mangle_reverse = false;
        profile = Scenario.P_light Qtp.Capabilities.R_full;
        workload = Scenario.Greedy;
        background = false;
        duration = 2.0;
        handover = None;
        trunk = None;
      };
  }

(* A slice of the fuzz smoke corpus, durations clamped so the committed
   traces stay a few hundred kilobytes each. *)
let fuzz_seed seed =
  let sc = Scenario.generate ~seed in
  {
    name = Printf.sprintf "fuzz_%d" seed;
    descr = Scenario.summary sc;
    scenario = { sc with Scenario.duration = Float.min sc.Scenario.duration 1.5 };
  }

(* Long-fat-network scenarios for the run-length SACK/TFRC fast path:
   250..400 ms RTTs put thousands of packets in flight, so the
   scoreboard, receiver tracker and loss history all carry wide,
   fragmented windows — exactly the state the interval representations
   compress.  Rates are kept moderate so the committed traces stay a
   few hundred kilobytes. *)

let lfn_af =
  {
    name = "lfn_af";
    descr = "two QTP_AF flows over a 300 ms-RTT long-fat AF dumbbell";
    scenario =
      {
        Scenario.seed = 9003;
        shape = Scenario.Dumbbell 2;
        rate_mbps = 12.0;
        delay_ms = 150.0;
        buffer_pkts = 600;
        red = true;
        loss = Scenario.Clean;
        mangle = Netsim.Mangler.none;
        mangle_reverse = false;
        profile = Scenario.P_af 0.8;
        workload = Scenario.Greedy;
        background = true;
        duration = 1.8;
        handover = None;
        trunk = None;
      };
  }

let lfn_light =
  {
    name = "lfn_light";
    descr =
      "QTP_light (full reliability) over a 400 ms-RTT lossy long-fat path";
    scenario =
      {
        Scenario.seed = 9004;
        shape = Scenario.Dumbbell 1;
        rate_mbps = 8.0;
        delay_ms = 200.0;
        buffer_pkts = 800;
        red = false;
        loss = Scenario.Bernoulli 0.005;
        mangle = Netsim.Mangler.none;
        mangle_reverse = false;
        profile = Scenario.P_light Qtp.Capabilities.R_full;
        workload = Scenario.Greedy;
        background = false;
        duration = 8.0;
        handover = None;
        trunk = None;
      };
  }

(* Mobility scenarios: a mid-connection WiFi -> cellular -> satellite
   migration sequence on a fixed schedule, one per feedback plane.  The
   first migration drains in flight, the second cuts it, so the traces
   pin both the drain and the D_cut drop paths plus the Handover event
   codec. *)

let handover_paths =
  [
    { Scenario.cls = Scenario.Wifi; ho_rate_mbps = 20.0; ho_delay_ms = 8.0;
      ho_loss = 0.0 };
    { Scenario.cls = Scenario.Cellular; ho_rate_mbps = 1.5; ho_delay_ms = 60.0;
      ho_loss = 0.0 };
    { Scenario.cls = Scenario.Satellite; ho_rate_mbps = 2.0;
      ho_delay_ms = 270.0; ho_loss = 0.0 };
  ]

let handover_scenario ~seed ~profile ~policy =
  {
    Scenario.seed;
    shape = Scenario.Dumbbell 1;
    rate_mbps = 20.0;
    delay_ms = 8.0;
    buffer_pkts = 60;
    red = false;
    loss = Scenario.Clean;
    mangle = Netsim.Mangler.none;
    mangle_reverse = false;
    profile;
    workload = Scenario.Greedy;
    background = false;
    duration = 3.0;
    handover =
      Some
        {
          Scenario.ho_links = handover_paths;
          ho_schedule = [ (1.0, 1, `Drain); (2.0, 2, `Cut) ];
          ho_policy = policy;
        };
    trunk = None;
  }

let handover_af =
  {
    name = "handover_af";
    descr = "QTP_AF through a WiFi -> cellular -> satellite handover (informed)";
    (* frac is relative to path 0 (20 Mb/s): 0.025 commits g = 0.5 Mb/s,
       below every path in the set, so the floor is honourable after
       both downgrades — a floor above a later path's capacity is a
       legitimate band scenario but a poor conformance exemplar (it
       storms and evicts the handover events from the ring window). *)
    scenario = handover_scenario ~seed:9005 ~profile:(Scenario.P_af 0.025)
        ~policy:`Informed;
  }

let handover_light =
  {
    name = "handover_light";
    descr =
      "QTP_light (full reliability) through the same handovers (reset policy)";
    scenario =
      handover_scenario ~seed:9006
        ~profile:(Scenario.P_light Qtp.Capabilities.R_full) ~policy:`Reset;
  }

(* Trunking scenarios: one gTFRC connection fronting dozens of user
   micro-flows, one per scheduling discipline.  [trunk_af] pins the
   DRR packing order and per-user framing under an AF floor; [trunk_light]
   pins the FIFO path with sender-side loss reconstruction over a lossy
   link, so retransmitted trunk segments demultiplex too. *)

let trunk_af =
  {
    name = "trunk_af";
    descr = "40-user DRR trunk over one QTP_AF connection (80% committed)";
    scenario =
      {
        Scenario.seed = 9007;
        shape = Scenario.Dumbbell 1;
        rate_mbps = 10.0;
        delay_ms = 30.0;
        buffer_pkts = 85;
        red = false;
        loss = Scenario.Clean;
        mangle = Netsim.Mangler.none;
        mangle_reverse = false;
        profile = Scenario.P_af 0.8;
        workload = Scenario.Greedy;
        background = false;
        duration = 2.0;
        handover = None;
        trunk =
          Some
            {
              Scenario.tr_users = 40;
              tr_sched = `Drr;
              tr_quantum = 1500;
              tr_frame_cap = 512;
            };
      };
  }

let trunk_light =
  {
    name = "trunk_light";
    descr =
      "25-user FIFO trunk over QTP_light (full reliability), 1% lossy path";
    scenario =
      {
        Scenario.seed = 9008;
        shape = Scenario.Dumbbell 1;
        rate_mbps = 6.0;
        delay_ms = 40.0;
        buffer_pkts = 60;
        red = false;
        loss = Scenario.Bernoulli 0.01;
        mangle = Netsim.Mangler.none;
        mangle_reverse = false;
        profile = Scenario.P_light Qtp.Capabilities.R_full;
        workload = Scenario.Greedy;
        background = false;
        duration = 2.0;
        handover = None;
        trunk =
          Some
            {
              Scenario.tr_users = 25;
              tr_sched = `Fifo;
              tr_quantum = 1500;
              tr_frame_cap = 256;
            };
      };
  }

let corpus =
  [ af_headline; light_headline ]
  @ List.map fuzz_seed [ 101; 102; 103; 104; 105; 106 ]
  @ [ lfn_af; lfn_light; handover_af; handover_light; trunk_af; trunk_light ]

let find name = List.find_opt (fun e -> e.name = name) corpus

let capture ?sched entry =
  Trace.Recorder.with_recorder (fun () -> Exec.run ?sched entry.scenario)

let canonical ?sched entry =
  let _, recorder = capture ?sched entry in
  Trace.Export.canonical recorder
