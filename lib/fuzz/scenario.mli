(** Randomised end-to-end protocol scenarios.

    A scenario is a fully self-describing value: topology shape, path
    parameters, queueing discipline, loss model, in-network fault
    profile ({!Netsim.Mangler.profile}), negotiated QTP profile,
    application workload, background traffic and run duration.
    {!generate} derives every field deterministically from a single
    integer seed, so a failing scenario is reproduced by its seed alone;
    the shrinker ({!Shrink}) edits fields directly. *)

type shape =
  | Dumbbell of int  (** n parallel VTP flows over one bottleneck *)
  | Chain of int  (** one flow over this many hops in a row *)
  | Parking_lot of int
      (** one long flow over all hops plus a cross flow on the last *)

type loss =
  | Clean
  | Bernoulli of float
  | Gilbert of { loss : float; burstiness : float }
      (** stationary loss rate; higher burstiness concentrates losses *)

type profile =
  | P_af of float
      (** QTP_AF with a committed rate of this fraction of the fair
          share *)
  | P_light of Qtp.Capabilities.reliability_mode  (** QTP_light *)
  | P_tfrc  (** plain TFRC, no reliability *)
  | P_full  (** TFRC + full reliability, best-effort network *)

type workload =
  | Greedy
  | Cbr of float  (** rate as a fraction of the fair share *)
  | On_off of float

(** {2 Mobility}

    A handover scenario runs one flow over a set of heterogeneous
    paths (WiFi / cellular / satellite) and migrates it between them
    mid-connection on a seeded schedule, exercising
    {!Netsim.Topology.migrate_flow} and the {!Tfrc.Handover} rate
    policies. *)

type link_class = Wifi | Cellular | Satellite

type ho_link = {
  cls : link_class;
  ho_rate_mbps : float;
  ho_delay_ms : float;  (** one-way propagation delay *)
  ho_loss : float;  (** Bernoulli loss on this path; 0 = clean *)
}

type handover = {
  ho_links : ho_link list;  (** the path set; index 0 starts active *)
  ho_schedule : (float * int * [ `Drain | `Cut ]) list;
      (** (time, target path, mode), ascending times *)
  ho_policy : [ `Keep | `Reset | `Informed ];
      (** sender rate policy applied on each migration *)
}

(** {2 Trunking}

    A trunk scenario multiplexes many user micro-flows over ONE
    gTFRC-controlled connection ({!Trunk.Mux}): heavy-tailed per-user
    workloads, an intra-trunk scheduler, and full reliability so the
    byte-conservation oracle applies end to end. *)

type trunk = {
  tr_users : int;  (** multiplexed micro-flows (10..1000) *)
  tr_sched : [ `Fifo | `Drr ];  (** intra-trunk scheduling discipline *)
  tr_quantum : int;  (** DRR byte quantum *)
  tr_frame_cap : int;  (** max user payload bytes per sub-frame *)
}

type t = {
  seed : int;  (** replay key: seeds the generator and the simulation *)
  shape : shape;
  rate_mbps : float;  (** bottleneck rate *)
  delay_ms : float;  (** bottleneck one-way propagation delay *)
  buffer_pkts : int;
  red : bool;  (** RED bottleneck queue instead of droptail *)
  loss : loss;
  mangle : Netsim.Mangler.profile;  (** forward-path fault injection *)
  mangle_reverse : bool;  (** also mangle the feedback path *)
  profile : profile;
  workload : workload;
  background : bool;  (** unresponsive Poisson cross-traffic *)
  duration : float;  (** seconds of data transfer before close *)
  handover : handover option;
      (** mobility schedule; [None] outside the [`Handover] band *)
  trunk : trunk option;
      (** flow-aggregation setup; [None] outside the [`Trunk] band *)
}

val generate : seed:int -> t
(** The scenario is a pure function of [seed]; shorthand for
    {!generate_in}[ ~band:`Std] — byte-identical to what every
    committed fuzz seed has always produced. *)

val generate_in : band:[ `Std | `Lfn | `Handover | `Trunk ] -> seed:int -> t
(** The scenario is a pure function of [band] and [seed].  [`Std]
    draws the classic short-path bounds; [`Lfn] draws the same
    scenario structure over long-fat-network paths: 125..250 ms
    one-way delay (250..500 ms RTT), 8..64 Mb/s bottlenecks,
    500..1500-packet buffers and shorter durations.  [`Handover]
    replays the standard draw sequence, then forces a single flow
    with no background traffic over a heterogeneous WiFi / cellular /
    satellite path triple and a 2–4-event migration schedule whose
    times come from an {!Engine.Rng.derive}d stream (independent of
    draw position).  [`Trunk] likewise replays the standard sequence,
    then forces a single full-reliability connection fronting
    10..1000 multiplexed users (trunk parameters from a derived
    stream); the base path, loss model and mangler stay, so trunks
    face reordered / duplicated / corrupted links.  All bands consume
    the base generator identically, so a seed's [`Std] scenario never
    changes as bands are added. *)

val flows : t -> int
(** Number of VTP connections the scenario runs. *)

val expected_mode : t -> Qtp.Capabilities.reliability_mode
(** The reliability mode negotiation must arrive at (the responder is
    fully permissive, so the initiator's preference wins). *)

val expected_plane : t -> Qtp.Capabilities.feedback_plane

val faulty : t -> bool
(** Any loss model or fault injection active — when false, e.g. a
    handshake timeout is inexcusable. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Multi-line, deterministic rendering (replay output is compared
    byte-for-byte). *)

val summary : t -> string
(** One line: seed, shape, profile, loss, duration. *)

val pp_shape : Format.formatter -> shape -> unit
val pp_loss : Format.formatter -> loss -> unit
val pp_profile : Format.formatter -> profile -> unit
val pp_workload : Format.formatter -> workload -> unit
val pp_handover : Format.formatter -> handover -> unit
val pp_trunk : Format.formatter -> trunk -> unit
