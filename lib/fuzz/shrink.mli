(** Greedy minimisation of a failing scenario.

    Starting from a scenario known to fail, repeatedly applies the
    simplest edit (single flow, no background, no RED, no loss, one
    fault class at a time, greedy workload, shorter run, canonical path
    parameters) that keeps the failure alive, until no candidate edit
    does.  The result typically isolates the one fault class and the
    smallest topology that reproduce the bug. *)

type outcome = {
  shrunk : Scenario.t;
  executions : int;  (** scenario runs spent shrinking *)
  steps : int;  (** accepted simplifications *)
}

val shrink :
  ?budget:int -> still_fails:(Scenario.t -> bool) -> Scenario.t -> outcome
(** [shrink ~still_fails sc] greedily minimises [sc].  [still_fails]
    must re-execute the scenario and decide whether the original
    failure (or an equally interesting one) persists; it is called at
    most [budget] (default 60) times. *)
