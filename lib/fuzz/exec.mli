(** Execute one scenario under the protocol-invariant checker and the
    end-of-run oracles.

    The run builds the scenario's topology (fault injection included),
    drives one VTP connection per flow through negotiation, data
    transfer and graceful close, and checks:

    - every {!Analysis.Invariants} catalogue invariant, live;
    - {b no-hang}: every connection reaches [Closed] by a fixed drain
      horizon (a handshake timeout is tolerated on faulty paths — six
      straight SYN losses are legitimate protocol behaviour, not a
      bug);
    - {b negotiation}: the agreed plane / mode match what the offers
      dictate;
    - {b full reliability}: a connection that agreed [R_full] and
      closed cleanly delivered exactly the prefix of distinct segments
      it sent — nothing skipped, nothing abandoned;
    - {b trunk conservation} (trunk scenarios): every user byte shipped
      through the trunk was delivered exactly once, byte-identical
      (running digests compared per user), and drained users shipped
      everything they admitted — see {!Trunk.Mux.check_conservation}.

    Everything is a pure function of the scenario (globally allocated
    frame uids aside, which carry no behaviour), so a report reproduces
    from the scenario value alone. *)

type failure =
  | Invariant of Analysis.Invariants.violation
  | Oracle of { flow : int; what : string }
  | Crash of string
      (** an exception escaped the simulation — always a finding *)

type flow_stats = {
  flow : int;
  final : string;  (** connection state at the drain horizon *)
  established : bool;  (** negotiation had completed when close was called *)
  data_sent : int;  (** distinct data segments *)
  retx : int;
  delivered : int;
  skipped : int;
  abandoned : int;
}

type trunk_stats = {
  tk_users : int;
  tk_admitted : int;  (** user bytes accepted into admission queues *)
  tk_shipped : int;  (** user bytes packed into trunk segments *)
  tk_delivered : int;  (** user bytes handed back, demultiplexed *)
  tk_segments : int;
  tk_frames : int;
  tk_rejected : int;  (** offered bytes refused by admission control *)
  tk_junk : int;  (** parser resync bytes — nonzero is a codec bug *)
  tk_jain : float;  (** Jain fairness over per-user delivered bytes *)
}

type report = {
  scenario : Scenario.t;
  failures : failure list;  (** empty = scenario passed *)
  flows : flow_stats list;
  mangled : Netsim.Mangler.stats;  (** summed over every mangled link *)
  trunk : trunk_stats option;  (** present on [`Trunk]-band scenarios *)
  handshake_timeouts : int;
  checker_events : int;
}

val run : ?sched:Engine.Sim.sched -> Scenario.t -> report
(** [sched] selects the simulation's event-queue backend (default
    [`Wheel]); the determinism regression replays the same scenario
    under both and compares report digests. *)

val passed : report -> bool

val drain_slack : float
(** Virtual seconds allowed after [close] for connections to drain. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit
