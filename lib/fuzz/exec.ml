module Caps = Qtp.Capabilities

type failure =
  | Invariant of Analysis.Invariants.violation
  | Oracle of { flow : int; what : string }
  | Crash of string

type flow_stats = {
  flow : int;
  final : string;
  established : bool;
  data_sent : int;
  retx : int;
  delivered : int;
  skipped : int;
  abandoned : int;
}

type trunk_stats = {
  tk_users : int;
  tk_admitted : int;
  tk_shipped : int;
  tk_delivered : int;
  tk_segments : int;
  tk_frames : int;
  tk_rejected : int;
  tk_junk : int;
  tk_jain : float;
}

type report = {
  scenario : Scenario.t;
  failures : failure list;
  flows : flow_stats list;
  mangled : Netsim.Mangler.stats;  (** summed over every mangled link *)
  trunk : trunk_stats option;
  handshake_timeouts : int;
  checker_events : int;
}

let passed r = r.failures = []

(* The close driver polls every [max (2 * srtt) 0.05] for at most 200
   ticks, and generation bounds keep the rtt of any scenario under a
   few seconds — so this much virtual time after [close] always
   suffices for every connection to reach Closed. *)
let drain_slack = 1500.0

let state_str : Qtp.Connection.state -> string = function
  | Qtp.Connection.Negotiating -> "negotiating"
  | Qtp.Connection.Established _ -> "established"
  | Qtp.Connection.Closing -> "closing"
  | Qtp.Connection.Closed -> "closed"
  | Qtp.Connection.Failed r -> "failed: " ^ r

(* Stationary loss = pi_bad * loss_bad with loss_good = 0 (same
   derivation as the experiment harness's canned model). *)
let gilbert ~loss ~burstiness rng =
  let loss_bad = 0.5 in
  let pi_bad = loss /. loss_bad in
  let p_bg = 0.5 *. (1.0 -. (0.9 *. burstiness)) in
  let p_gb = p_bg *. pi_bad /. (1.0 -. pi_bad) in
  Netsim.Loss_model.gilbert_elliott ~p_good_to_bad:p_gb ~p_bad_to_good:p_bg
    ~loss_good:0.0 ~loss_bad ~rng

let red_params ~buffer_pkts ~rate_bps =
  {
    Netsim.Red.min_th = Float.max 4.0 (0.25 *. float_of_int buffer_pkts);
    max_th = Float.max 8.0 (0.7 *. float_of_int buffer_pkts);
    max_p = 0.1;
    w_q = 0.002;
    gentle = true;
    idle_pkt_time = 1500.0 *. 8.0 /. rate_bps;
  }

let build_topology ~sim ~rng (sc : Scenario.t) ~n_total =
  let rate = sc.Scenario.rate_mbps *. 1e6 in
  let delay = sc.Scenario.delay_ms /. 1000.0 in
  let qdisc () =
    if sc.Scenario.red then
      Netsim.Qdisc.red ~capacity_pkts:sc.Scenario.buffer_pkts
        ~params:(red_params ~buffer_pkts:sc.Scenario.buffer_pkts ~rate_bps:rate)
        ~rng:(Engine.Rng.split rng) ()
    else Netsim.Qdisc.droptail ~capacity_pkts:sc.Scenario.buffer_pkts
  in
  let loss () =
    match sc.Scenario.loss with
    | Scenario.Clean -> Netsim.Loss_model.none
    | Scenario.Bernoulli p ->
        Netsim.Loss_model.bernoulli ~p ~rng:(Engine.Rng.split rng)
    | Scenario.Gilbert { loss; burstiness } ->
        gilbert ~loss ~burstiness (Engine.Rng.split rng)
  in
  let mangle () =
    if Netsim.Mangler.is_active sc.Scenario.mangle then
      Some
        (Netsim.Mangler.create ~sim ~rng:(Engine.Rng.split rng)
           sc.Scenario.mangle)
    else None
  in
  let forward =
    Netsim.Topology.spec ~rate_bps:rate ~delay ~qdisc ~loss ~mangle ()
  in
  let reverse =
    Netsim.Topology.spec ~rate_bps:rate ~delay
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:2000)
      ~mangle:(if sc.Scenario.mangle_reverse then mangle else fun () -> None)
      ()
  in
  (* Extra hops of a chain / parking lot: clean, amply buffered, same
     rate — the first hop stays the bottleneck and the fault site. *)
  let plain_hop =
    Netsim.Topology.spec ~rate_bps:(1.25 *. rate) ~delay:0.002
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:2000)
      ()
  in
  match sc.Scenario.shape with
  | Scenario.Dumbbell _ ->
      let committed_rates =
        match sc.Scenario.profile with
        | Scenario.P_af frac ->
            let n_vtp = Scenario.flows sc in
            Some
              (Array.init n_total (fun i ->
                   if i < n_vtp then frac *. rate /. float_of_int n_vtp
                   else 0.0))
        | _ -> None
      in
      Netsim.Topology.dumbbell ~sim ~n_flows:n_total ~bottleneck:forward
        ~reverse ?committed_rates ()
  | Scenario.Chain h ->
      let hops = forward :: List.init (h - 1) (fun _ -> plain_hop) in
      Netsim.Topology.chain ~sim ~n_flows:n_total ~hops ~reverse ()
  | Scenario.Parking_lot h ->
      let hops = forward :: List.init (h - 1) (fun _ -> plain_hop) in
      (* Flow 0 crosses every hop; flow 1 is a single-hop cross flow on
         the last hop; an optional background flow shares the long
         path. *)
      let vtp_paths = [ (0, h); (h - 1, h) ] in
      let paths =
        Array.of_list
          (if n_total > 2 then vtp_paths @ [ (0, h) ] else vtp_paths)
      in
      Netsim.Topology.parking_lot ~sim ~hops ~paths ~reverse ()

(* Mobility: one duplex link pair per candidate path, each with its own
   declared rate / delay and optional Bernoulli loss; the scenario's
   mangler profile (if any) applies to every forward path so handovers
   can race reordered and duplicated frames.  Reverse paths take the
   per-path default (mirroring rate and delay), so feedback latency
   jumps with each migration exactly as on a real access change. *)
let build_mobile ~sim ~rng (sc : Scenario.t) (h : Scenario.handover) =
  let mangle () =
    if Netsim.Mangler.is_active sc.Scenario.mangle then
      Some
        (Netsim.Mangler.create ~sim ~rng:(Engine.Rng.split rng)
           sc.Scenario.mangle)
    else None
  in
  let spec_of (l : Scenario.ho_link) =
    let loss () =
      if l.Scenario.ho_loss > 0.0 then
        Netsim.Loss_model.bernoulli ~p:l.Scenario.ho_loss
          ~rng:(Engine.Rng.split rng)
      else Netsim.Loss_model.none
    in
    Netsim.Topology.spec
      ~rate_bps:(l.Scenario.ho_rate_mbps *. 1e6)
      ~delay:(l.Scenario.ho_delay_ms /. 1000.0)
      ~qdisc:(fun () ->
        Netsim.Qdisc.droptail ~capacity_pkts:sc.Scenario.buffer_pkts)
      ~loss ~mangle ()
  in
  Netsim.Topology.mobile ~sim
    ~paths:(List.map spec_of h.Scenario.ho_links)
    ()

let offers (sc : Scenario.t) ~fair_bps =
  match sc.Scenario.profile with
  | Scenario.P_af frac ->
      (Qtp.Profile.qtp_af ~g_bps:(frac *. fair_bps) (), Qtp.Profile.anything ())
  | Scenario.P_light m ->
      (Qtp.Profile.qtp_light ~reliability:[ m ] (), Qtp.Profile.anything ())
  | Scenario.P_tfrc -> (Qtp.Profile.qtp_tfrc (), Qtp.Profile.anything ())
  | Scenario.P_full -> (Qtp.Profile.qtp_full (), Qtp.Profile.anything ())

(* Trunk workloads and DRR weights come from a stream derived purely
   from the scenario seed: heavy-tailed sizes spanning three decades
   (most users are mice, a few are elephants), and a minority of users
   with elevated weights so the differential's weighted bound is
   exercised end to end. *)
let trunk_exec_key = 0x54524b (* "TRK" *)

let build_trunk (sc : Scenario.t) (tr : Scenario.trunk) =
  let wrng = Engine.Rng.create ~seed:(sc.Scenario.seed lxor trunk_exec_key) in
  let weights =
    Array.init tr.Scenario.tr_users (fun _ ->
        if Engine.Rng.chance wrng 0.2 then 1 + Engine.Rng.int wrng 7 else 1)
  in
  let workloads =
    Array.init tr.Scenario.tr_users (fun _ ->
        int_of_float
          (Engine.Dist.log_uniform_range wrng ~lo:64.0 ~hi:65536.0))
  in
  let discipline =
    match tr.Scenario.tr_sched with
    | `Fifo -> Trunk.Sched.Fifo
    | `Drr -> Trunk.Sched.Drr
  in
  let cfg =
    Trunk.Mux.config ~discipline ~quantum:tr.Scenario.tr_quantum
      ~frame_cap:tr.Scenario.tr_frame_cap ~users:tr.Scenario.tr_users ()
  in
  (Trunk.Mux.create ~weights cfg, workloads)

let source ~sim ~rng (sc : Scenario.t) ~fair_bps =
  match sc.Scenario.workload with
  | Scenario.Greedy -> Qtp.Source.greedy ()
  | Scenario.Cbr frac ->
      Qtp.Source.cbr ~sim ~rate_bps:(frac *. fair_bps) ~packet_size:1500 ()
  | Scenario.On_off frac ->
      Qtp.Source.on_off ~sim ~rng:(Engine.Rng.split rng) ~mean_on:1.0
        ~mean_off:0.5 ~rate_bps:(frac *. fair_bps) ~packet_size:1500 ()

let run ?sched (sc : Scenario.t) : report =
  let sim = Engine.Sim.create ~seed:sc.Scenario.seed ?sched () in
  let rng = Engine.Sim.split_rng sim in
  let n_vtp =
    match sc.Scenario.handover with
    | Some _ -> 1 (* the mobile topology is single-flow by construction *)
    | None -> Scenario.flows sc
  in
  let background = sc.Scenario.background && sc.Scenario.handover = None in
  let n_total = n_vtp + if background then 1 else 0 in
  let mobile =
    match sc.Scenario.handover with
    | Some h -> Some (build_mobile ~sim ~rng sc h)
    | None -> None
  in
  let topo =
    match mobile with
    | Some m -> Netsim.Topology.mobile_net m
    | None -> build_topology ~sim ~rng sc ~n_total
  in
  let rate = sc.Scenario.rate_mbps *. 1e6 in
  let fair_bps = rate /. float_of_int n_vtp in
  let checker = Analysis.Invariants.create () in
  Analysis.Observe.install_rate_hook checker;
  Fun.protect ~finally:Analysis.Observe.clear_rate_hook @@ fun () ->
  Analysis.Observe.instrument checker topo;
  let initiator, responder = offers sc ~fair_bps in
  let initial_rtt =
    Float.max 0.05 (4.0 *. sc.Scenario.delay_ms /. 1000.0)
  in
  let handover_policy =
    match sc.Scenario.handover with
    | Some h -> Some h.Scenario.ho_policy
    | None -> None
  in
  let trunk_mux =
    match sc.Scenario.trunk with
    | Some tr -> Some (build_trunk sc tr)
    | None -> None
  in
  let conns =
    Array.init n_vtp (fun i ->
        Qtp.Connection.create_negotiated ~sim
          ~endpoint:(Netsim.Topology.endpoint topo i)
          ~source:
            (match trunk_mux with
            | Some (mux, _) when i = 0 -> Trunk.Mux.source mux
            | _ -> source ~sim ~rng sc ~fair_bps)
          ~start_at:(0.01 *. float_of_int i)
          ~initial_rtt ?handover:handover_policy ~initiator ~responder ())
  in
  (match trunk_mux with
  | Some (mux, workloads) ->
      Trunk.Mux.attach mux ~conn:conns.(0)
        ~seg_payload:(1500 - Packet.Header.data_header_bytes);
      ignore
        (Trunk.Mux.feed mux ~sim ~workloads ~stop_at:sc.Scenario.duration ())
  | None -> ());
  (match (mobile, sc.Scenario.handover) with
  | Some m, Some h ->
      let conn = conns.(0) in
      Netsim.Topology.on_migrate m (fun idx ->
          let fwd = Netsim.Topology.path_fwd m idx in
          let rev = Netsim.Topology.path_rev m idx in
          Qtp.Connection.notify_migration conn
            ~link:
              (Tfrc.Handover.link_of
                 ~bandwidth_bps:(Netsim.Link.rate_bps fwd)
                 ~rtt:(Netsim.Link.delay fwd +. Netsim.Link.delay rev)));
      Netsim.Topology.apply_schedule m h.Scenario.ho_schedule
  | _ -> ());
  if background then begin
    let ep = Netsim.Topology.endpoint topo n_vtp in
    ep.Netsim.Topology.on_receiver_rx (fun _ -> ());
    ignore
      (Workload.Background.poisson ~sim ~sink:ep.Netsim.Topology.to_receiver
         ~flow_id:n_vtp ~rng:(Engine.Rng.split rng)
         ~rate_bps:(0.3 *. rate) ~packet_size:1000
         ~stop_at:sc.Scenario.duration ())
  end;
  let agreed_at_close = Array.make n_vtp None in
  (* Any exception escaping the simulation is itself a finding — fuzzing
     must report crashes, not die on them. *)
  let crash =
    match
      Engine.Sim.run ~until:sc.Scenario.duration sim;
      Array.iteri
        (fun i c ->
          match Qtp.Connection.state c with
          | Qtp.Connection.Established a -> agreed_at_close.(i) <- Some a
          | _ -> ())
        conns;
      Array.iter Qtp.Connection.close conns;
      Engine.Sim.run ~until:(sc.Scenario.duration +. drain_slack) sim
    with
    | () -> None
    | exception exn -> Some (Printexc.to_string exn)
  in
  (* Oracles. *)
  let oracle_failures = ref [] in
  let fail flow what = oracle_failures := Oracle { flow; what } :: !oracle_failures in
  let handshake_timeouts = ref 0 in
  let flows =
    Array.to_list
      (Array.mapi
         (fun i c ->
           let established = agreed_at_close.(i) <> None in
           let st = Qtp.Connection.state c in
           (match st with
           | _ when crash <> None ->
               (* A crashed run never reached the drain horizon; the
                  per-flow oracles would only echo that. *)
               ()
           | Qtp.Connection.Closed -> ()
           | Qtp.Connection.Failed "handshake timeout" ->
               incr handshake_timeouts;
               if not (Scenario.faulty sc) then
                 fail i "handshake timeout on a fault-free path"
           | Qtp.Connection.Failed r -> fail i ("connection failed: " ^ r)
           | Qtp.Connection.Negotiating | Qtp.Connection.Established _
           | Qtp.Connection.Closing ->
               fail i
                 ("no-hang: connection still " ^ state_str st
                ^ " at the drain horizon"));
           (match agreed_at_close.(i) with
           | _ when crash <> None -> ()
           | None -> ()
           | Some a ->
               if a.Caps.mode <> Scenario.expected_mode sc then
                 fail i
                   (Format.asprintf
                      "negotiation: agreed mode %a, offers dictate %a"
                      Caps.pp_mode a.Caps.mode Caps.pp_mode
                      (Scenario.expected_mode sc));
               if a.Caps.plane <> Scenario.expected_plane sc then
                 fail i
                   (Format.asprintf
                      "negotiation: agreed plane %a, offers dictate %a"
                      Caps.pp_plane a.Caps.plane Caps.pp_plane
                      (Scenario.expected_plane sc));
               (match sc.Scenario.profile with
               | Scenario.P_af _ ->
                   if not (a.Caps.target_bps > 0.0) then
                     fail i "negotiation: QTP_AF agreed without a QoS target"
               | _ -> ());
               (* Full reliability: once closed cleanly, the receiver
                  holds exactly the prefix of what the sender emitted. *)
               if
                 a.Caps.mode = Caps.R_full
                 && (match st with Qtp.Connection.Closed -> true | _ -> false)
               then begin
                 let sent = Qtp.Connection.data_sent c in
                 let delivered = Qtp.Connection.delivered c in
                 let skipped = Qtp.Connection.skipped c in
                 let abandoned = Qtp.Connection.abandoned c in
                 if skipped <> 0 then
                   fail i
                     (Printf.sprintf
                        "full reliability: receiver skipped %d segment(s)"
                        skipped);
                 if abandoned <> 0 then
                   fail i
                     (Printf.sprintf
                        "full reliability: sender abandoned %d segment(s)"
                        abandoned);
                 if delivered <> sent then
                   fail i
                     (Printf.sprintf
                        "full reliability: delivered %d of %d distinct \
                         segments"
                        delivered sent)
               end);
           {
             flow = i;
             final = state_str (Qtp.Connection.state c);
             established;
             data_sent = Qtp.Connection.data_sent c;
             retx = Qtp.Connection.retransmissions c;
             delivered = Qtp.Connection.delivered c;
             skipped = Qtp.Connection.skipped c;
             abandoned = Qtp.Connection.abandoned c;
           })
         conns)
  in
  (* Trunk conservation oracle: once the trunk connection agreed full
     reliability and closed cleanly, every byte every user shipped was
     delivered exactly once, byte-identical (digests), and every user
     whose admission queue drained had all admitted bytes shipped. *)
  let trunk_stats =
    match trunk_mux with
    | None -> None
    | Some (mux, _) ->
        (match (crash, agreed_at_close.(0), Qtp.Connection.state conns.(0)) with
        | None, Some a, Qtp.Connection.Closed when a.Caps.mode = Caps.R_full
          -> (
            match Trunk.Mux.check_conservation mux with
            | Ok () -> ()
            | Error what -> fail 0 ("trunk conservation: " ^ what))
        | _ -> ());
        let n = Trunk.Mux.users mux in
        let sum get =
          let s = ref 0 in
          for u = 0 to n - 1 do
            s := !s + get ~user:u
          done;
          !s
        in
        let dlv = Trunk.Mux.delivered_per_user mux in
        let jain =
          if Array.exists (fun x -> x > 0.0) dlv then Stats.Fairness.jain dlv
          else 1.0
        in
        Some
          {
            tk_users = n;
            tk_admitted = sum (Trunk.Mux.admitted_bytes mux);
            tk_shipped = sum (Trunk.Mux.shipped_bytes mux);
            tk_delivered = sum (Trunk.Mux.delivered_bytes mux);
            tk_segments = Trunk.Mux.segments_packed mux;
            tk_frames = Trunk.Mux.frames_packed mux;
            tk_rejected = Trunk.Mux.rejected mux;
            tk_junk = Trunk.Mux.junk_bytes mux;
            tk_jain = jain;
          }
  in
  let mangled =
    List.fold_left
      (fun (acc : Netsim.Mangler.stats) link ->
        match Netsim.Link.mangler link with
        | None -> acc
        | Some m ->
            let s = Netsim.Mangler.stats m in
            {
              Netsim.Mangler.passed = acc.Netsim.Mangler.passed + s.Netsim.Mangler.passed;
              reordered = acc.Netsim.Mangler.reordered + s.Netsim.Mangler.reordered;
              duplicated = acc.Netsim.Mangler.duplicated + s.Netsim.Mangler.duplicated;
              corrupted = acc.Netsim.Mangler.corrupted + s.Netsim.Mangler.corrupted;
            })
      { Netsim.Mangler.passed = 0; reordered = 0; duplicated = 0; corrupted = 0 }
      topo.Netsim.Topology.links
  in
  let invariant_failures =
    List.map (fun v -> Invariant v) (Analysis.Invariants.violations checker)
  in
  let crash_failures =
    match crash with None -> [] | Some msg -> [ Crash msg ]
  in
  {
    scenario = sc;
    failures = crash_failures @ invariant_failures @ List.rev !oracle_failures;
    flows;
    mangled;
    trunk = trunk_stats;
    handshake_timeouts = !handshake_timeouts;
    checker_events = Analysis.Invariants.events_seen checker;
  }

let pp_failure fmt = function
  | Invariant v -> Analysis.Invariants.pp_violation fmt v
  | Oracle { flow; what } -> Format.fprintf fmt "[oracle] flow %d: %s" flow what
  | Crash msg -> Format.fprintf fmt "[crash] %s" msg

let pp_report fmt r =
  Format.fprintf fmt "@[<v>%a@," Scenario.pp r.scenario;
  List.iter
    (fun f ->
      Format.fprintf fmt
        "flow %d: %s sent=%d retx=%d delivered=%d skipped=%d abandoned=%d@,"
        f.flow f.final f.data_sent f.retx f.delivered f.skipped f.abandoned)
    r.flows;
  Format.fprintf fmt
    "mangled: %d passed, %d reordered, %d duplicated, %d corrupted@,"
    r.mangled.Netsim.Mangler.passed r.mangled.Netsim.Mangler.reordered
    r.mangled.Netsim.Mangler.duplicated r.mangled.Netsim.Mangler.corrupted;
  (match r.trunk with
  | None -> ()
  | Some tk ->
      Format.fprintf fmt
        "trunk: %d users admitted=%d shipped=%d delivered=%d segs=%d \
         frames=%d rejected=%d junk=%d jain=%.4f@,"
        tk.tk_users tk.tk_admitted tk.tk_shipped tk.tk_delivered
        tk.tk_segments tk.tk_frames tk.tk_rejected tk.tk_junk tk.tk_jain);
  Format.fprintf fmt "checker events: %d@," r.checker_events;
  (match r.failures with
  | [] -> Format.fprintf fmt "verdict: PASS"
  | fs ->
      Format.fprintf fmt "verdict: FAIL (%d)" (List.length fs);
      List.iter (fun f -> Format.fprintf fmt "@,  %a" pp_failure f) fs);
  Format.fprintf fmt "@]"
