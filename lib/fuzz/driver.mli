(** Fuzzing campaigns: seed sweeps, the profile matrix and the fixed
    smoke corpus.

    Every campaign fans its per-seed executions over an
    {!Engine.Pool} ([jobs] workers, default {!Engine.Pool.default_jobs})
    and then aggregates — and fires the [progress] callback — in seed
    order, so a campaign's output is byte-identical at [jobs = 1] and
    [jobs = N].  Each scenario is a pure function of its seed; nothing
    crosses tasks. *)

type found = {
  report : Exec.report;
  shrunk : Shrink.outcome option;  (** present when shrinking was on *)
}

type soak = {
  runs : int;
  found : found list;  (** failing scenarios, in seed order *)
  handshake_timeouts : int;
      (** benign: negotiation gave up on a faulty path — reported so a
          campaign summary can show how hostile the sampled networks
          were *)
}

val still_fails : Scenario.t -> bool
(** Re-execute and ask whether any failure (invariant or oracle)
    remains — the shrinker's predicate. *)

val run_scenario : ?shrink:bool -> Scenario.t -> found
(** Execute one scenario; when [shrink] (default false) and it failed,
    greedily minimise it. *)

val run_seed : ?shrink:bool -> int -> found
(** [run_scenario] of [Scenario.generate ~seed]. *)

val digest : Exec.report -> string
(** Stable hex fingerprint of a report (MD5 of its rendering).  A
    report is a pure function of its scenario, so equal digests across
    [--jobs] values prove schedule independence — the [@par-smoke]
    gate diffs exactly these. *)

val soak :
  ?base:int ->
  ?band:[ `Std | `Lfn | `Handover | `Trunk ] ->
  ?shrink:bool ->
  ?progress:(int -> Exec.report -> unit) ->
  ?jobs:int ->
  seeds:int ->
  unit ->
  soak
(** Run seeds [base .. base + seeds - 1] (default base 1) in
    generation [band] (default [`Std], see {!Scenario.generate_in}). *)

val run_seeds :
  ?band:[ `Std | `Lfn | `Handover | `Trunk ] ->
  ?shrink:bool ->
  ?progress:(int -> Exec.report -> unit) ->
  ?jobs:int ->
  int list ->
  soak
(** Run an explicit seed list (e.g. {!smoke_corpus}), same reporting
    as {!soak}. *)

val matrix_cells : Scenario.profile list
(** The six profile/reliability compositions the paper distinguishes:
    TFRC alone, TFRC+full, QTP_AF, and QTP_light under each reliability
    mode. *)

val matrix :
  ?base:int ->
  ?shrink:bool ->
  ?progress:(int -> Exec.report -> unit) ->
  ?jobs:int ->
  seeds_per_cell:int ->
  unit ->
  soak
(** For every cell, generate scenarios and force the cell's profile
    onto them — every composition gets exercised regardless of the
    generator's sampling. *)

val smoke_corpus : int list
(** The 25 fixed seeds dune's [@fuzz-smoke] alias replays on every test
    run.  Append new seeds to grow coverage; never reshuffle. *)
