type found = {
  report : Exec.report;
  shrunk : Shrink.outcome option;
}

type soak = {
  runs : int;
  found : found list;  (** failing scenarios, in seed order *)
  handshake_timeouts : int;
}

(* A failure "persists" under shrinking if the shrunk scenario still
   fails at all — any violation or oracle breach in a strictly simpler
   scenario is at least as interesting as the original. *)
let still_fails sc = not (Exec.passed (Exec.run sc))

let run_scenario ?(shrink = false) sc =
  let report = Exec.run sc in
  if Exec.passed report then { report; shrunk = None }
  else if not shrink then { report; shrunk = None }
  else { report; shrunk = Some (Shrink.shrink ~still_fails sc) }

let run_seed ?shrink seed = run_scenario ?shrink (Scenario.generate ~seed)

(* A report is a pure function of its scenario, so its rendering is a
   stable fingerprint: the @par-smoke gate diffs these digests across
   --jobs values to prove schedule independence. *)
let digest (r : Exec.report) =
  Digest.to_hex (Digest.string (Format.asprintf "%a" Exec.pp_report r))

(* Shared fan-out core: execute every scenario (in parallel when the
   pool has more than one worker), then aggregate and fire the
   progress callback sequentially in submission order — so logs and
   summaries are byte-identical whatever --jobs was. *)
let run_batch ?(shrink = false) ?progress ?jobs scenarios =
  let results =
    Engine.Pool.with_pool ?jobs (fun pool ->
        Engine.Pool.map pool (fun sc -> run_scenario ~shrink sc) scenarios)
  in
  let found = ref [] in
  let timeouts = ref 0 in
  Array.iteri
    (fun i f ->
      timeouts := !timeouts + f.report.Exec.handshake_timeouts;
      if not (Exec.passed f.report) then found := f :: !found;
      match progress with
      | Some p -> p scenarios.(i).Scenario.seed f.report
      | None -> ())
    results;
  {
    runs = Array.length scenarios;
    found = List.rev !found;
    handshake_timeouts = !timeouts;
  }

let soak ?(base = 1) ?(band = `Std) ?shrink ?progress ?jobs ~seeds () =
  run_batch ?shrink ?progress ?jobs
    (Array.init seeds (fun i -> Scenario.generate_in ~band ~seed:(base + i)))

let run_seeds ?(band = `Std) ?shrink ?progress ?jobs seeds =
  run_batch ?shrink ?progress ?jobs
    (Array.of_list
       (List.map (fun seed -> Scenario.generate_in ~band ~seed) seeds))

(* ------------------------------------------------------------------ *)
(* Profile / reliability matrix *)

let matrix_cells =
  [
    Scenario.P_tfrc;
    Scenario.P_full;
    Scenario.P_af 0.3;
    Scenario.P_light Qtp.Capabilities.R_none;
    Scenario.P_light Qtp.Capabilities.R_partial;
    Scenario.P_light Qtp.Capabilities.R_full;
  ]

let matrix ?(base = 1) ?shrink ?progress ?jobs ~seeds_per_cell () =
  let cells = Array.of_list matrix_cells in
  let scenarios =
    Array.init
      (Array.length cells * seeds_per_cell)
      (fun k ->
        let cell = k / seeds_per_cell and i = k mod seeds_per_cell in
        let seed = base + (cell * seeds_per_cell) + i in
        { (Scenario.generate ~seed) with Scenario.profile = cells.(cell) })
  in
  run_batch ?shrink ?progress ?jobs scenarios

(* ------------------------------------------------------------------ *)
(* Fixed smoke corpus: the seeds dune's @fuzz-smoke alias replays on
   every test run.  Chosen once, kept stable — coverage growth belongs
   in new seeds appended here, not in reshuffling. *)

let smoke_corpus =
  [
    101; 102; 103; 104; 105; 106; 107; 108; 109; 110; 111; 112; 113;
    114; 115; 116; 117; 118; 119; 120; 121; 122; 123; 124; 125;
  ]
