type found = {
  report : Exec.report;
  shrunk : Shrink.outcome option;
}

type soak = {
  runs : int;
  found : found list;  (** failing scenarios, in seed order *)
  handshake_timeouts : int;
}

(* A failure "persists" under shrinking if the shrunk scenario still
   fails at all — any violation or oracle breach in a strictly simpler
   scenario is at least as interesting as the original. *)
let still_fails sc = not (Exec.passed (Exec.run sc))

let run_scenario ?(shrink = false) sc =
  let report = Exec.run sc in
  if Exec.passed report then { report; shrunk = None }
  else if not shrink then { report; shrunk = None }
  else { report; shrunk = Some (Shrink.shrink ~still_fails sc) }

let run_seed ?shrink seed = run_scenario ?shrink (Scenario.generate ~seed)

let soak ?(base = 1) ?(shrink = false) ?progress ~seeds () =
  let found = ref [] in
  let timeouts = ref 0 in
  for i = 0 to seeds - 1 do
    let seed = base + i in
    let f = run_seed ~shrink seed in
    timeouts := !timeouts + f.report.Exec.handshake_timeouts;
    if not (Exec.passed f.report) then found := f :: !found;
    match progress with Some p -> p seed f.report | None -> ()
  done;
  { runs = seeds; found = List.rev !found; handshake_timeouts = !timeouts }

(* ------------------------------------------------------------------ *)
(* Profile / reliability matrix *)

let matrix_cells =
  [
    Scenario.P_tfrc;
    Scenario.P_full;
    Scenario.P_af 0.3;
    Scenario.P_light Qtp.Capabilities.R_none;
    Scenario.P_light Qtp.Capabilities.R_partial;
    Scenario.P_light Qtp.Capabilities.R_full;
  ]

let matrix ?(base = 1) ?(shrink = false) ?progress ~seeds_per_cell () =
  let found = ref [] in
  let timeouts = ref 0 in
  let runs = ref 0 in
  List.iteri
    (fun cell profile ->
      for i = 0 to seeds_per_cell - 1 do
        let seed = base + (cell * seeds_per_cell) + i in
        let sc = { (Scenario.generate ~seed) with Scenario.profile = profile } in
        let f = run_scenario ~shrink sc in
        incr runs;
        timeouts := !timeouts + f.report.Exec.handshake_timeouts;
        if not (Exec.passed f.report) then found := f :: !found;
        match progress with Some p -> p seed f.report | None -> ()
      done)
    matrix_cells;
  { runs = !runs; found = List.rev !found; handshake_timeouts = !timeouts }

(* ------------------------------------------------------------------ *)
(* Fixed smoke corpus: the seeds dune's @fuzz-smoke alias replays on
   every test run.  Chosen once, kept stable — coverage growth belongs
   in new seeds appended here, not in reshuffling. *)

let smoke_corpus =
  [
    101; 102; 103; 104; 105; 106; 107; 108; 109; 110; 111; 112; 113;
    114; 115; 116; 117; 118; 119; 120; 121; 122; 123; 124; 125;
  ]
