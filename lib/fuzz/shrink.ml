(* Greedy scenario shrinking: try a fixed list of simplifications, keep
   any edit under which the scenario still fails, and repeat until no
   candidate makes progress (or the execution budget runs out).  The
   candidates only ever simplify (fewer flows, fewer faults, shorter
   runs), so the loop terminates. *)

type outcome = {
  shrunk : Scenario.t;
  executions : int;  (** scenario runs spent shrinking *)
  steps : int;  (** accepted simplifications *)
}

let set_mangle (sc : Scenario.t) f =
  let m = f sc.Scenario.mangle in
  { sc with Scenario.mangle = m }

(* Each candidate returns [None] when it would not change the
   scenario. *)
let candidates : (Scenario.t -> Scenario.t option) list =
  [
    (fun sc ->
      match sc.Scenario.shape with
      | Scenario.Dumbbell 1 -> None
      | _ -> Some { sc with Scenario.shape = Scenario.Dumbbell 1 });
    (fun sc ->
      match sc.Scenario.shape with
      | Scenario.Dumbbell n when n > 1 ->
          Some { sc with Scenario.shape = Scenario.Dumbbell (n - 1) }
      | _ -> None);
    (fun sc ->
      if sc.Scenario.background then
        Some { sc with Scenario.background = false }
      else None);
    (* Mobility: first try fewer migrations, then none at all (the
       scenario still runs over its mobile topology, so path parameters
       stay fixed while the schedule simplifies). *)
    (fun sc ->
      match sc.Scenario.handover with
      | Some h when List.length h.Scenario.ho_schedule > 1 ->
          Some
            {
              sc with
              Scenario.handover =
                Some
                  {
                    h with
                    Scenario.ho_schedule =
                      [ List.hd h.Scenario.ho_schedule ];
                  };
            }
      | _ -> None);
    (fun sc ->
      match sc.Scenario.handover with
      | Some _ -> Some { sc with Scenario.handover = None }
      | None -> None);
    (* Trunking: first halve the user population (10 is the band's
       floor), then drop the trunk entirely — the scenario then runs
       its plain greedy workload. *)
    (fun sc ->
      match sc.Scenario.trunk with
      | Some tr when tr.Scenario.tr_users > 10 ->
          Some
            {
              sc with
              Scenario.trunk =
                Some
                  {
                    tr with
                    Scenario.tr_users =
                      Stdlib.max 10 (tr.Scenario.tr_users / 2);
                  };
            }
      | _ -> None);
    (fun sc ->
      match sc.Scenario.trunk with
      | Some _ -> Some { sc with Scenario.trunk = None }
      | None -> None);
    (fun sc ->
      if sc.Scenario.red then Some { sc with Scenario.red = false } else None);
    (fun sc ->
      match sc.Scenario.loss with
      | Scenario.Clean -> None
      | _ -> Some { sc with Scenario.loss = Scenario.Clean });
    (fun sc ->
      if sc.Scenario.mangle_reverse then
        Some { sc with Scenario.mangle_reverse = false }
      else None);
    (fun sc ->
      if sc.Scenario.mangle.Netsim.Mangler.p_reorder > 0.0 then
        Some
          (set_mangle sc (fun m -> { m with Netsim.Mangler.p_reorder = 0.0 }))
      else None);
    (fun sc ->
      if sc.Scenario.mangle.Netsim.Mangler.p_duplicate > 0.0 then
        Some
          (set_mangle sc (fun m ->
               { m with Netsim.Mangler.p_duplicate = 0.0 }))
      else None);
    (fun sc ->
      if sc.Scenario.mangle.Netsim.Mangler.p_corrupt > 0.0 then
        Some
          (set_mangle sc (fun m -> { m with Netsim.Mangler.p_corrupt = 0.0 }))
      else None);
    (fun sc ->
      if sc.Scenario.mangle.Netsim.Mangler.reorder_max_hold > 1 then
        Some
          (set_mangle sc (fun m -> { m with Netsim.Mangler.reorder_max_hold = 1 }))
      else None);
    (fun sc ->
      match sc.Scenario.workload with
      | Scenario.Greedy -> None
      | _ -> Some { sc with Scenario.workload = Scenario.Greedy });
    (fun sc ->
      if sc.Scenario.duration > 2.0 then
        Some
          {
            sc with
            Scenario.duration = Float.max 2.0 (sc.Scenario.duration /. 2.0);
          }
      else None);
    (fun sc ->
      if sc.Scenario.buffer_pkts <> 30 then
        Some { sc with Scenario.buffer_pkts = 30 }
      else None);
    (fun sc ->
      if not (Float.equal sc.Scenario.rate_mbps 4.0) then
        Some { sc with Scenario.rate_mbps = 4.0 }
      else None);
    (fun sc ->
      if not (Float.equal sc.Scenario.delay_ms 10.0) then
        Some { sc with Scenario.delay_ms = 10.0 }
      else None);
  ]

let shrink ?(budget = 60) ~still_fails scenario =
  let executions = ref 0 in
  let steps = ref 0 in
  let try_one sc candidate =
    match candidate sc with
    | None -> None
    | Some sc' ->
        if !executions >= budget then None
        else begin
          incr executions;
          if still_fails sc' then Some sc' else None
        end
  in
  let rec fixpoint sc =
    let progress =
      List.fold_left
        (fun acc candidate ->
          match acc with
          | Some _ -> acc
          | None -> try_one sc candidate)
        None candidates
    in
    match progress with
    | Some sc' ->
        incr steps;
        if !executions >= budget then sc' else fixpoint sc'
    | None -> sc
  in
  let shrunk = fixpoint scenario in
  { shrunk; executions = !executions; steps = !steps }
