module Caps = Qtp.Capabilities

type shape =
  | Dumbbell of int
  | Chain of int
  | Parking_lot of int

type loss =
  | Clean
  | Bernoulli of float
  | Gilbert of { loss : float; burstiness : float }

type profile =
  | P_af of float
  | P_light of Caps.reliability_mode
  | P_tfrc
  | P_full

type workload =
  | Greedy
  | Cbr of float
  | On_off of float

type link_class = Wifi | Cellular | Satellite

type ho_link = {
  cls : link_class;
  ho_rate_mbps : float;
  ho_delay_ms : float;
  ho_loss : float;
}

type handover = {
  ho_links : ho_link list;
  ho_schedule : (float * int * [ `Drain | `Cut ]) list;
  ho_policy : [ `Keep | `Reset | `Informed ];
}

type trunk = {
  tr_users : int;
  tr_sched : [ `Fifo | `Drr ];
  tr_quantum : int;
  tr_frame_cap : int;
}

type t = {
  seed : int;
  shape : shape;
  rate_mbps : float;
  delay_ms : float;
  buffer_pkts : int;
  red : bool;
  loss : loss;
  mangle : Netsim.Mangler.profile;
  mangle_reverse : bool;
  profile : profile;
  workload : workload;
  background : bool;
  duration : float;
  handover : handover option;
  trunk : trunk option;
}

let flows t =
  match t.shape with
  | Dumbbell n -> n
  | Chain _ -> 1
  | Parking_lot _ -> 2

let expected_mode t =
  match t.profile with
  | P_af _ | P_full -> Caps.R_full
  | P_tfrc -> Caps.R_none
  | P_light m -> m

let expected_plane t =
  match t.profile with
  | P_light _ -> Caps.Light
  | P_af _ | P_tfrc | P_full -> Caps.Standard

let faulty t =
  (match t.loss with Clean -> false | Bernoulli _ | Gilbert _ -> true)
  || Netsim.Mangler.is_active t.mangle
  || (match t.handover with
     | None -> false
     | Some h ->
         (* A [`Cut] handover drops everything in flight, and lossy
            member links lose packets on their own — both excuse
            timeouts a clean path would not. *)
         List.exists (fun (_, _, m) -> m = `Cut) h.ho_schedule
         || List.exists (fun l -> l.ho_loss > 0.0) h.ho_links)

(* Generation bounds.  They are chosen so that the close-drain horizon
   used by {!Exec} is always sufficient: rtt is capped (rate >= 1 Mb/s,
   buffer <= 120 pkts, one-way delay <= 80 ms) and fault probabilities
   are moderate enough that handshakes and CLOSE exchanges almost
   always complete within their retry budgets.

   The [`Lfn] band moves only the path-parameter bounds into
   long-fat-network territory — 125..250 ms one-way delay (250..500 ms
   RTT), faster bottlenecks, buffers sized for the larger
   bandwidth-delay product, and shorter durations so a run's packet
   count stays comparable.  The draw SEQUENCE is identical in both
   bands: every committed fuzz seed keeps its byte-identical [`Std]
   scenario.

   The [`Handover] band reuses the full standard draw sequence and only
   THEN overrides the mobility-relevant fields (single flow, no
   background, longer run) and draws the heterogeneous path set — so
   again no existing band's scenario moves.  The handover schedule
   itself is drawn from a {!Engine.Rng.derive}d child stream keyed by
   the seed: migration times are independent of how many draws precede
   them, which a property test pins. *)

let ho_schedule_key = 0x484f (* "HO" *)

let trunk_key = 0x5452 (* "TR" *)

let ho_link_of_class hrng cls =
  let lo, hi, dlo, dhi =
    match cls with
    | Wifi -> (10.0, 50.0, 3.0, 15.0)
    | Cellular -> (0.5, 2.0, 40.0, 100.0)
    | Satellite -> (1.0, 4.0, 250.0, 300.0)
  in
  {
    cls;
    ho_rate_mbps = Engine.Dist.log_uniform_range hrng ~lo ~hi;
    ho_delay_ms = Engine.Dist.uniform_range hrng ~lo:dlo ~hi:dhi;
    ho_loss =
      (if Engine.Rng.chance hrng 0.3 then
         Engine.Dist.log_uniform_range hrng ~lo:1e-4 ~hi:0.02
       else 0.0);
  }

let generate_handover ~seed ~duration rng =
  (* Path parameters come from the parent stream; migration TIMES come
     from a derived stream so they do not depend on the number of
     preceding draws. *)
  let perms =
    [|
      [| Wifi; Cellular; Satellite |]; [| Wifi; Satellite; Cellular |];
      [| Cellular; Wifi; Satellite |]; [| Cellular; Satellite; Wifi |];
      [| Satellite; Wifi; Cellular |]; [| Satellite; Cellular; Wifi |];
    |]
  in
  let classes = Engine.Dist.choice rng perms in
  let ho_links = Array.to_list (Array.map (ho_link_of_class rng) classes) in
  let n_links = Array.length classes in
  let n_events = 2 + Engine.Rng.int rng 3 in
  let ho_policy =
    Engine.Dist.choice rng [| `Keep; `Reset; `Informed |]
  in
  let trng = Engine.Rng.derive rng ~key:(ho_schedule_key lxor seed) in
  let times =
    List.sort Float.compare
      (List.init n_events (fun _ ->
           Engine.Dist.uniform_range trng ~lo:(0.15 *. duration)
             ~hi:(0.85 *. duration)))
  in
  let active = ref 0 in
  let ho_schedule =
    List.map
      (fun at ->
        (* Always migrate to a DIFFERENT path: draw an offset in
           [1, n-1] from the current one. *)
        let to_ = (!active + 1 + Engine.Rng.int trng (n_links - 1)) mod n_links in
        active := to_;
        let mode = if Engine.Rng.chance trng 0.7 then `Drain else `Cut in
        (at, to_, mode))
      times
  in
  { ho_links; ho_schedule; ho_policy }

let generate_in ~band ~seed =
  let rng = Engine.Rng.create ~seed in
  let lfn = band = `Lfn in
  let shape =
    match
      Engine.Dist.weighted rng
        [ (3.0, `D1); (2.0, `Dn); (2.0, `Chain); (1.0, `Parking) ]
    with
    | `D1 -> Dumbbell 1
    | `Dn -> Dumbbell (2 + Engine.Rng.int rng 3)
    | `Chain -> Chain (2 + Engine.Rng.int rng 2)
    | `Parking -> Parking_lot (2 + Engine.Rng.int rng 2)
  in
  let rate_mbps =
    if lfn then Engine.Dist.log_uniform_range rng ~lo:8.0 ~hi:64.0
    else Engine.Dist.log_uniform_range rng ~lo:1.0 ~hi:16.0
  in
  let delay_ms =
    if lfn then Engine.Dist.log_uniform_range rng ~lo:125.0 ~hi:250.0
    else Engine.Dist.log_uniform_range rng ~lo:2.0 ~hi:80.0
  in
  let buffer_pkts =
    (* Upper bound keeps the worst-case queueing delay (buffer drained
       at the slowest LFN rate) small enough that {!Exec.drain_slack}
       still covers the close driver's 200-poll horizon. *)
    if lfn then 500 + Engine.Rng.int rng 1001 else 10 + Engine.Rng.int rng 111
  in
  let red = Engine.Rng.chance rng 0.25 in
  let loss =
    match Engine.Dist.weighted rng [ (5.0, `C); (3.0, `B); (2.0, `G) ] with
    | `C -> Clean
    | `B -> Bernoulli (Engine.Dist.log_uniform_range rng ~lo:1e-4 ~hi:0.05)
    | `G ->
        Gilbert
          {
            loss = Engine.Dist.log_uniform_range rng ~lo:1e-3 ~hi:0.03;
            burstiness = Engine.Rng.float rng 0.8;
          }
  in
  let fault_p () = Engine.Dist.log_uniform_range rng ~lo:1e-3 ~hi:0.12 in
  let p_reorder = if Engine.Rng.chance rng 0.5 then fault_p () else 0.0 in
  let reorder_max_hold = 1 + Engine.Rng.int rng 8 in
  let p_duplicate = if Engine.Rng.chance rng 0.5 then fault_p () else 0.0 in
  let p_corrupt = if Engine.Rng.chance rng 0.5 then fault_p () else 0.0 in
  let mangle =
    Netsim.Mangler.profile ~p_reorder ~reorder_max_hold ~p_duplicate
      ~p_corrupt ()
  in
  let mangle_reverse = Engine.Rng.chance rng 0.3 in
  let profile =
    match Engine.Rng.int rng 4 with
    | 0 -> P_af (0.1 +. Engine.Rng.float rng 0.4)
    | 1 ->
        P_light
          (Engine.Dist.choice rng [| Caps.R_none; Caps.R_partial; Caps.R_full |])
    | 2 -> P_tfrc
    | _ -> P_full
  in
  let workload =
    match Engine.Dist.weighted rng [ (2.0, `G); (2.0, `C); (1.0, `O) ] with
    | `G -> Greedy
    | `C -> Cbr (0.3 +. Engine.Rng.float rng 0.9)
    | `O -> On_off (0.5 +. Engine.Rng.float rng 1.0)
  in
  let background = Engine.Rng.chance rng 0.3 in
  let duration =
    if lfn then 2.5 +. Engine.Rng.float rng 2.5
    else 4.0 +. Engine.Rng.float rng 8.0
  in
  let base =
    {
      seed;
      shape;
      rate_mbps;
      delay_ms;
      buffer_pkts;
      red;
      loss;
      mangle;
      mangle_reverse;
      profile;
      workload;
      background;
      duration;
      handover = None;
      trunk = None;
    }
  in
  match band with
  | `Std | `Lfn -> base
  | `Handover ->
      (* Mobility: one flow, no cross-traffic, a longer run so every
         migration has time to show its rate transient, and a clean
         bottleneck model — losses come from the member links and the
         schedule instead.  [rate_mbps]/[delay_ms] mirror path 0 so
         fair-share computations see the initial path. *)
      let duration = 8.0 +. Engine.Rng.float rng 8.0 in
      let ho = generate_handover ~seed ~duration rng in
      let first = List.hd ho.ho_links in
      {
        base with
        shape = Dumbbell 1;
        rate_mbps = first.ho_rate_mbps;
        delay_ms = first.ho_delay_ms;
        red = false;
        loss = Clean;
        background = false;
        duration;
        handover = Some ho;
      }
  | `Trunk ->
      (* Flow aggregation: ONE gTFRC connection fronting many user
         micro-flows.  The base draw sequence is fully consumed first,
         then the trunk-specific draws come from a derived stream keyed
         by the seed — like the handover schedule, they are independent
         of draw position.  Reliability is forced to full (the
         conservation oracle needs every shipped byte delivered); the
         path, loss model and mangler come from the base scenario, so
         trunks face reordering, duplication and corruption too. *)
      let trng = Engine.Rng.derive rng ~key:(trunk_key lxor seed) in
      let tr_users =
        int_of_float (Engine.Dist.log_uniform_range trng ~lo:10.0 ~hi:1000.0)
      in
      let tr_sched = if Engine.Rng.chance trng 0.5 then `Drr else `Fifo in
      let tr_quantum = Engine.Dist.choice trng [| 500; 1500; 3000 |] in
      let tr_frame_cap = Engine.Dist.choice trng [| 128; 256; 512 |] in
      let profile =
        match base.profile with
        | P_light _ -> P_light Caps.R_full
        | P_tfrc -> P_full
        | (P_af _ | P_full) as p -> p
      in
      {
        base with
        shape = Dumbbell 1;
        profile;
        workload = Greedy;
        background = false;
        trunk = Some { tr_users; tr_sched; tr_quantum; tr_frame_cap };
      }

let generate ~seed = generate_in ~band:`Std ~seed

(* ------------------------------------------------------------------ *)
(* Printing *)

let pp_shape fmt = function
  | Dumbbell n -> Format.fprintf fmt "dumbbell(%d)" n
  | Chain h -> Format.fprintf fmt "chain(%d hops)" h
  | Parking_lot h -> Format.fprintf fmt "parking-lot(%d hops)" h

let pp_loss fmt = function
  | Clean -> Format.pp_print_string fmt "clean"
  | Bernoulli p -> Format.fprintf fmt "bernoulli(%.4g)" p
  | Gilbert { loss; burstiness } ->
      Format.fprintf fmt "gilbert(loss=%.4g, burst=%.2f)" loss burstiness

let pp_profile fmt = function
  | P_af frac -> Format.fprintf fmt "qtp_af(g=%.2f of fair share)" frac
  | P_light m -> Format.fprintf fmt "qtp_light(%a)" Caps.pp_mode m
  | P_tfrc -> Format.pp_print_string fmt "qtp_tfrc"
  | P_full -> Format.pp_print_string fmt "qtp_full"

let pp_workload fmt = function
  | Greedy -> Format.pp_print_string fmt "greedy"
  | Cbr f -> Format.fprintf fmt "cbr(%.2f of fair share)" f
  | On_off f -> Format.fprintf fmt "on-off(%.2f of fair share)" f

let class_name = function
  | Wifi -> "wifi"
  | Cellular -> "cellular"
  | Satellite -> "satellite"

let policy_name = function
  | `Keep -> "keep"
  | `Reset -> "reset"
  | `Informed -> "informed"

let pp_ho_link fmt l =
  Format.fprintf fmt "%s(%.3g Mb/s, %.3g ms%s)" (class_name l.cls)
    l.ho_rate_mbps l.ho_delay_ms
    (if l.ho_loss > 0.0 then Format.sprintf ", loss=%.4g" l.ho_loss else "")

let pp_handover fmt h =
  Format.fprintf fmt "policy=%s paths=[%a] schedule=[%a]"
    (policy_name h.ho_policy)
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       pp_ho_link)
    h.ho_links
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (at, to_, mode) ->
         Format.fprintf fmt "%.3fs->%d %s" at to_
           (match mode with `Drain -> "drain" | `Cut -> "cut")))
    h.ho_schedule

let pp_handover_opt fmt = function
  | None -> ()
  | Some h -> Format.fprintf fmt "@,handover: %a" pp_handover h

let sched_name = function `Fifo -> "fifo" | `Drr -> "drr"

let pp_trunk fmt tr =
  Format.fprintf fmt "%d users, %s, quantum=%d, frame_cap=%d" tr.tr_users
    (sched_name tr.tr_sched) tr.tr_quantum tr.tr_frame_cap

let pp_trunk_opt fmt = function
  | None -> ()
  | Some tr -> Format.fprintf fmt "@,trunk:    %a" pp_trunk tr

let pp fmt t =
  Format.fprintf fmt
    "@[<v 2>scenario seed=%d@,\
     shape:    %a@,\
     path:     %.3g Mb/s, %.3g ms, %d pkts %s@,\
     loss:     %a@,\
     mangle:   %a%s@,\
     profile:  %a@,\
     workload: %a%s@,\
     duration: %.2f s%a%a@]"
    t.seed pp_shape t.shape t.rate_mbps t.delay_ms t.buffer_pkts
    (if t.red then "(RED)" else "(droptail)")
    pp_loss t.loss Netsim.Mangler.pp_profile t.mangle
    (if t.mangle_reverse then " +reverse" else "")
    pp_profile t.profile pp_workload t.workload
    (if t.background then " +background" else "")
    t.duration pp_handover_opt t.handover pp_trunk_opt t.trunk

let summary t =
  Format.asprintf "seed=%d %a %a %a %.2fs%s" t.seed pp_shape t.shape pp_profile
    t.profile pp_loss t.loss t.duration
    ((match t.handover with
     | None -> ""
     | Some h ->
         Format.sprintf " handover(%s, %d migrations)"
           (policy_name h.ho_policy)
           (List.length h.ho_schedule))
    ^
    match t.trunk with
    | None -> ""
    | Some tr ->
        Format.sprintf " trunk(%d users, %s)" tr.tr_users
          (sched_name tr.tr_sched))

let equal (a : t) (b : t) =
  a.seed = b.seed && a.shape = b.shape
  && Float.equal a.rate_mbps b.rate_mbps
  && Float.equal a.delay_ms b.delay_ms
  && a.buffer_pkts = b.buffer_pkts && a.red = b.red
  && (match (a.loss, b.loss) with
     | Clean, Clean -> true
     | Bernoulli x, Bernoulli y -> Float.equal x y
     | Gilbert g, Gilbert h ->
         Float.equal g.loss h.loss && Float.equal g.burstiness h.burstiness
     | _ -> false)
  && Float.equal a.mangle.Netsim.Mangler.p_reorder
       b.mangle.Netsim.Mangler.p_reorder
  && a.mangle.Netsim.Mangler.reorder_max_hold
     = b.mangle.Netsim.Mangler.reorder_max_hold
  && Float.equal a.mangle.Netsim.Mangler.p_duplicate
       b.mangle.Netsim.Mangler.p_duplicate
  && Float.equal a.mangle.Netsim.Mangler.p_corrupt
       b.mangle.Netsim.Mangler.p_corrupt
  && a.mangle_reverse = b.mangle_reverse
  && (match (a.profile, b.profile) with
     | P_af x, P_af y -> Float.equal x y
     | P_light m, P_light n -> m = n
     | P_tfrc, P_tfrc | P_full, P_full -> true
     | _ -> false)
  && (match (a.workload, b.workload) with
     | Greedy, Greedy -> true
     | Cbr x, Cbr y | On_off x, On_off y -> Float.equal x y
     | _ -> false)
  && a.background = b.background
  && Float.equal a.duration b.duration
  &&
  let ho_link_equal (x : ho_link) (y : ho_link) =
    x.cls = y.cls
    && Float.equal x.ho_rate_mbps y.ho_rate_mbps
    && Float.equal x.ho_delay_ms y.ho_delay_ms
    && Float.equal x.ho_loss y.ho_loss
  in
  let sched_equal (ta, pa, ma) (tb, pb, mb) =
    Float.equal ta tb && pa = pb && ma = mb
  in
  (match (a.handover, b.handover) with
  | None, None -> true
  | Some x, Some y ->
      x.ho_policy = y.ho_policy
      && List.length x.ho_links = List.length y.ho_links
      && List.for_all2 ho_link_equal x.ho_links y.ho_links
      && List.length x.ho_schedule = List.length y.ho_schedule
      && List.for_all2 sched_equal x.ho_schedule y.ho_schedule
  | _ -> false)
  &&
  match (a.trunk, b.trunk) with
  | None, None -> true
  | Some x, Some y ->
      x.tr_users = y.tr_users && x.tr_sched = y.tr_sched
      && x.tr_quantum = y.tr_quantum
      && x.tr_frame_cap = y.tr_frame_cap
  | _ -> false
