(** The golden-trace conformance corpus.

    A small, committed set of named scenarios whose canonical flight
    recorder traces are checked byte-for-byte on every test run: the
    headline AF and QTP_light scenarios the paper's claims rest on,
    plus a slice of the fuzz smoke corpus with shortened durations.

    Each corpus entry replayed under both event-queue backends must
    produce the identical canonical trace — PR 3's determinism claim
    turned into an enforced regression gate — and must match the file
    committed under [test/golden/], so any behavioural drift in the
    protocol stack shows up as a trace diff rather than a silent
    number change. *)

type entry = {
  name : string;  (** corpus key; also the committed file's basename *)
  descr : string;
  scenario : Scenario.t;
}

val corpus : entry list
(** Stable order; append new entries at the end, never reshuffle. *)

val find : string -> entry option

val capture : ?sched:Engine.Sim.sched -> entry -> Exec.report * Trace.Recorder.t
(** Replay the entry's scenario with the flight recorder installed
    (default backend [`Wheel]) and return the run report with the
    filled recorder. *)

val canonical : ?sched:Engine.Sim.sched -> entry -> string
(** The canonical trace text of one replay. *)
