(* Benchmark harness.

   Two layers, both driven from this one executable:

   1. {b Experiment tables} — one per table/figure-equivalent of the
      paper's claims (E1..E16 plus the design-choice ablations), printed
      exactly as `bin/vtp_experiments` prints them.  These are the
      "regenerate the evaluation" benchmarks.

   2. {b Microbenchmarks} (Bechamel) — one [Test.make] per computational
      kernel the protocols exercise per packet or per feedback, so the
      cost-model claims (QTP_light's cheap receiver, the sender-side
      reconstruction price) can be checked against real ns/op numbers.

   3. {b Scale scenarios} ([Scale]) — 10/100/500 mixed-protocol flows
      over a shared AF bottleneck, timed under both event-queue
      backends; the machine-readable report for regression tracking.

   Usage:
     dune exec bench/main.exe                        # micro + all tables
     dune exec bench/main.exe -- micro               # microbenchmarks only
     dune exec bench/main.exe -- tables              # tables only
     dune exec bench/main.exe -- tables e1 e5        # a table subset
     dune exec bench/main.exe -- scale               # micro + scale -> BENCH_<date>.json
     dune exec bench/main.exe -- scale --json F      # ... report into F
     dune exec bench/main.exe -- scale --jobs 8      # fan scenarios over 8 domains
     dune exec bench/main.exe -- smoke --json F      # one fast 10-flow scenario
     dune exec bench/main.exe -- overhead            # tracing on/off, 100 flows *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Microbenchmark subjects *)

let bench_equation =
  Test.make ~name:"tfrc.equation.rate"
    (Staged.stage @@ fun () ->
     ignore (Tfrc.Equation.rate ~s:1500 ~r:0.1 ~p:0.02 ()))

let bench_equation_inverse =
  Test.make ~name:"tfrc.equation.inverse"
    (Staged.stage @@ fun () ->
     ignore (Tfrc.Equation.loss_rate_for ~s:1500 ~r:0.1 ~target:1e6))

(* The standard receiver's steady-state duty cycle over 1000 packets
   with 1% holes: per-packet history maintenance plus a loss-event-rate
   recomputation at every feedback epoch (one per 50-packet "RTT"). *)
let bench_loss_history =
  Test.make ~name:"recv.std.1000pkts(duty cycle)"
    (Staged.stage @@ fun () ->
     let lh = Tfrc.Loss_history.create () in
     for i = 0 to 999 do
       if i mod 100 <> 99 then
         Tfrc.Loss_history.on_packet lh ~seq:(Packet.Serial.of_int i)
           ~arrival:(float_of_int i *. 0.001)
           ~rtt:0.05 ~is_retx:false;
       if i mod 50 = 49 then ignore (Tfrc.Loss_history.loss_event_rate lh)
     done)

(* The light receiver's duty cycle on the same arrival pattern: O(1)
   tracking per packet, one SACK render per epoch, and the sender's
   forward point pruning abandoned holes (which keeps the range list
   bounded, as the protocol guarantees). *)
let bench_rcv_tracker =
  Test.make ~name:"recv.light.1000pkts(duty cycle)"
    (Staged.stage @@ fun () ->
     let tr = Sack.Rcv_tracker.create () in
     for i = 0 to 999 do
       if i mod 100 <> 99 then
         Sack.Rcv_tracker.on_data tr ~seq:(Packet.Serial.of_int i);
       if i mod 50 = 49 then begin
         ignore (Sack.Rcv_tracker.sack_blocks tr);
         Sack.Rcv_tracker.apply_fwd_point tr (Packet.Serial.of_int (i - 49))
       end
     done)

(* Both scoreboard rows price the streaming digest (the production
   entry point); the list-building wrapper survives only as the parity
   oracle in the tests. *)
let ignore_cover ~seq:_ ~sent_at:_ ~was_retx:_ = ()

let bench_scoreboard =
  Test.make ~name:"sack.scoreboard.1000pkts+fb"
    (Staged.stage @@ fun () ->
     let sb = Sack.Scoreboard.create () in
     for i = 0 to 999 do
       Sack.Scoreboard.on_send sb ~seq:(Packet.Serial.of_int i)
         ~now:(float_of_int i *. 0.001)
         ~size:1500 ~is_retx:false
     done;
     for k = 0 to 9 do
       ignore
         (Sack.Scoreboard.iter_feedback sb
            ~cum_ack:(Packet.Serial.of_int (100 * (k + 1)))
            ~blocks:[] ~on_ack:ignore_cover ~on_sack:ignore_cover
            ~on_lost:ignore)
     done)

(* The LFN window: 30000 packets in flight (ring pre-sized, as an LFN
   sender would), then ten SACK feedbacks of the shape the 1000-packet
   row uses — a 100-packet cumulative advance plus three fresh blocks
   just above the ack point.  The run-length scoreboard merges each
   feedback in O(log runs + newly-covered), never touching the other
   ~29k in-flight packets; the per-packet representation walked the
   whole window.  Serials and block lists are prebuilt so the measured
   loop prices only scoreboard work. *)
let[@vtp.ambient] bench_scoreboard_30k =
  (* ambient: the prebuilt serial/block arrays are written once here
     and only read by the measured closure. *)
  Test.make ~name:"sack.scoreboard.30000pkts+fb"
    (let n = 30_000 in
     let seqs = Array.init n Packet.Serial.of_int in
     let cums = Array.init 10 (fun k -> Packet.Serial.of_int (100 * (k + 1))) in
     let blocks =
       Array.init 10 (fun k ->
           let base = (100 * (k + 1)) + 50 in
           List.init 3 (fun j ->
               {
                 Packet.Header.block_start =
                   Packet.Serial.of_int (base + (j * 40));
                 block_end = Packet.Serial.of_int (base + (j * 40) + 20);
               }))
     in
     Staged.stage @@ fun () ->
     let sb = Sack.Scoreboard.create ~capacity:n () in
     for i = 0 to n - 1 do
       Sack.Scoreboard.on_send sb ~seq:seqs.(i)
         ~now:(float_of_int i *. 1e-5)
         ~size:1500 ~is_retx:false
     done;
     for k = 0 to 9 do
       ignore
         (Sack.Scoreboard.iter_feedback sb ~cum_ack:cums.(k)
            ~blocks:blocks.(k) ~on_ack:ignore_cover ~on_sack:ignore_cover
            ~on_lost:ignore)
     done)

let bench_reconstructor =
  Test.make ~name:"qtp.reconstruction.1000covers"
    (Staged.stage @@ fun () ->
     let lr = Qtp.Loss_reconstructor.create () in
     let covers =
       List.init 990 (fun i ->
           let i = if i mod 99 = 98 then i + 1 else i in
           {
             Sack.Scoreboard.cov_seq = Packet.Serial.of_int i;
             cov_sent_at = float_of_int i *. 0.001;
             cov_was_retx = false;
           })
     in
     Qtp.Loss_reconstructor.on_covers lr ~covers ~rtt:0.05 ~x_recv:1e6
       ~packet_size:1500)

let[@vtp.ambient] bench_red =
  Test.make ~name:"netsim.red.decide"
    (let rng = Engine.Rng.create ~seed:1 in
     let red = Netsim.Red.create Netsim.Red.default_params ~rng in
     let i = ref 0 in
     Staged.stage @@ fun () ->
     incr i;
     ignore (Netsim.Red.decide red ~now:(float_of_int !i *. 1e-4) ~qlen:10))

let[@vtp.ambient] bench_token_bucket =
  Test.make ~name:"netsim.token_bucket.conform"
    (let tb = Netsim.Token_bucket.create ~rate_bps:1e6 ~burst:10000 ~now:0.0 in
     let i = ref 0 in
     Staged.stage @@ fun () ->
     incr i;
     ignore
       (Netsim.Token_bucket.conform tb
          ~now:(float_of_int !i *. 1e-4)
          ~bytes:1500))

let bench_wire_encode =
  Test.make ~name:"packet.wire.encode_data"
    (let hdr =
       Packet.Header.Data
         {
           seq = Packet.Serial.of_int 123456;
           tstamp = 1.5;
           rtt_estimate = 0.05;
           is_retransmit = false;
           fwd_point = Packet.Serial.of_int 123000;
         }
     in
     Staged.stage @@ fun () -> ignore (Packet.Wire.encode hdr))

let bench_wire_roundtrip =
  Test.make ~name:"packet.wire.sack_roundtrip"
    (let hdr =
       Packet.Header.Sack_feedback
         {
           cum_ack = Packet.Serial.of_int 1000;
           blocks =
             List.init 4 (fun i ->
                 {
                   Packet.Header.block_start =
                     Packet.Serial.of_int (1010 + (i * 10));
                   block_end = Packet.Serial.of_int (1015 + (i * 10));
                 });
           sack_tstamp_echo = 1.0;
           sack_t_delay = 0.001;
           sack_x_recv = 1e6;
           sack_ce_count = 2;
         }
     in
     Staged.stage @@ fun () ->
     ignore (Packet.Wire.decode (Packet.Wire.encode hdr)))

(* The zero-copy packed roundtrip: encode a 4-block SACK into the
   domain-local scratch, validate in place, and fold every field with
   the composed in-place reader — no intermediate [Header.t], no
   allocation (the property suite asserts < 1 word/op). *)
let bench_wire_inplace =
  Test.make ~name:"packet.wire.inplace"
    (let hdr =
       Packet.Header.Sack_feedback
         {
           cum_ack = Packet.Serial.of_int 1000;
           blocks =
             List.init 4 (fun i ->
                 {
                   Packet.Header.block_start =
                     Packet.Serial.of_int (1010 + (i * 10));
                   block_end = Packet.Serial.of_int (1015 + (i * 10));
                 });
           sack_tstamp_echo = 1.0;
           sack_t_delay = 0.001;
           sack_x_recv = 1e6;
           sack_ce_count = 2;
         }
     in
     let buf = Packet.Wire.Packed.scratch () in
     Staged.stage @@ fun () ->
     let len = Packet.Wire.Packed.encode_into hdr buf ~pos:0 in
     Packet.Wire.Packed.check buf ~pos:0 ~len;
     ignore (Packet.Wire.Packed.read_digest buf ~pos:0))

(* The trunk framing fast path: batch-encode eight sub-frames into the
   domain-local scratch and demultiplex them back with the in-place
   iterator — the per-segment duty cycle of a loaded mux, no
   allocation either way (the property suite asserts < 1 word/op). *)
let[@vtp.ambient] bench_trunk_frame =
  Test.make ~name:"trunk.frame.pack_demux_8"
    (let buf = Trunk.Frame.scratch () in
     let payload = Bytes.make 256 'x' in
     Staged.stage @@ fun () ->
     let pos = ref 0 in
     for u = 0 to 7 do
       pos :=
         !pos
         + Trunk.Frame.encode_into buf ~pos:!pos ~user:u ~src:payload
             ~src_pos:0 ~len:256
     done;
     let seen = ref 0 in
     Trunk.Frame.iter buf ~pos:0 ~len:!pos
       ~frame:(fun ~user:_ ~off:_ ~len -> seen := !seen + len)
       ~junk:(fun ~bytes:_ -> failwith "trunk.frame bench: junk in scratch");
     assert (!seen = 8 * 256))

let bench_rng =
  Test.make ~name:"engine.rng.bits64"
    (let rng = Engine.Rng.create ~seed:7 in
     Staged.stage @@ fun () -> ignore (Engine.Rng.bits64 rng))

let bench_heap =
  Test.make ~name:"engine.heap.add_pop_100"
    (Staged.stage @@ fun () ->
     let h = Engine.Heap.create ~compare:Float.compare in
     for i = 0 to 99 do
       Engine.Heap.add h (float_of_int ((i * 7919) mod 100))
     done;
     for _ = 0 to 99 do
       ignore (Engine.Heap.pop_min h)
     done)

(* The flight recorder's zero-allocation fast path: one packed journal
   write plus the per-flow count bump, cycling over 64 flows so the tag
   word varies like a real mixed-flow run. *)
let[@vtp.ambient] bench_trace_record =
  Test.make ~name:"trace.record_seg_send"
    (let r = Trace.Recorder.create () in
     let i = ref 0 in
     Staged.stage @@ fun () ->
     incr i;
     Trace.Recorder.record_seg_send r ~flow:(!i land 63)
       ~at:(float_of_int !i)
       ~seq:(Packet.Serial.of_int !i)
       ~size:1500 ~retx:false)

(* A full end-to-end simulated second of a TFRC transfer, to price the
   whole stack rather than one kernel. *)
let bench_end_to_end =
  Test.make ~name:"e2e.tfrc_1s_sim"
    (Staged.stage @@ fun () ->
     let sim = Engine.Sim.create ~seed:3 () in
     let forward =
       Netsim.Topology.spec ~rate_bps:10e6 ~delay:0.01
         ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:50)
         ()
     in
     let topo = Netsim.Topology.duplex_path ~sim ~forward () in
     let agreed =
       Qtp.Profile.agreed_exn (Qtp.Profile.qtp_tfrc ())
         (Qtp.Profile.anything ())
     in
     let conn =
       Qtp.Connection.create ~sim
         ~endpoint:(Netsim.Topology.endpoint topo 0)
         (Qtp.Connection.config ~initial_rtt:0.1 agreed)
     in
     Engine.Sim.run ~until:1.0 sim;
     ignore (Qtp.Connection.delivered conn))

let micro_tests =
  [
    bench_rng;
    bench_heap;
    bench_equation;
    bench_equation_inverse;
    bench_loss_history;
    bench_rcv_tracker;
    bench_scoreboard;
    bench_scoreboard_30k;
    bench_reconstructor;
    bench_red;
    bench_token_bucket;
    bench_wire_encode;
    bench_wire_roundtrip;
    bench_wire_inplace;
    bench_trunk_frame;
    bench_trace_record;
    bench_end_to_end;
  ]

(* Measure every microbenchmark, returning (name, ns/run, r2) rows
   sorted by benchmark name — [Hashtbl.iter] order is unspecified, and
   report rows must be stable across runs. *)
let measure_micro () =
  let cfg = Benchmark.cfg ~limit:3000 ~quota:(Time.second 1.0) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let ransac = Analyze.ransac ~filter_outliers:true ~predictor:Measure.run in
  let rows = ref [] in
  List.iter
    (fun test ->
      (* One quota window on a virtualised host can be poisoned
         wholesale by steal time, skewing the least-squares slope 2-3x
         while the true per-run cost is unchanged.  Noise only ever
         inflates a timing, so measure each row up to [max_reps] times
         and keep the smallest estimate.  A sustained slowdown still
         yields a clean fit on an inflated slope, so every rep runs —
         there is no early exit on a good r2.  Within a rep, a poor fit
         falls back to the outlier-filtered RANSAC slope. *)
      let best = Hashtbl.create 4 in
      let max_reps = 3 in
      for _rep = 1 to max_reps do
          (* Isolate GC state per rep: the big-window rows churn
             hundreds of megabytes through the major heap, and the
             pressure would otherwise bleed into later samples. *)
          Gc.compact ();
          let results = Benchmark.all cfg instances test in
          let analysis = Analyze.all ols Instance.monotonic_clock results in
          let robust = Analyze.all ransac Instance.monotonic_clock results in
          Hashtbl.iter
            (fun name ols_result ->
              let ns =
                match Analyze.OLS.estimates ols_result with
                | Some (x :: _) -> x
                | Some [] | None -> nan
              in
              let r2 =
                match Analyze.OLS.r_square ols_result with
                | Some r -> r
                | None -> nan
              in
              let ns =
                if r2 >= 0.9 then ns
                else
                  match Hashtbl.find_opt robust name with
                  | Some rr -> Float.min ns (Analyze.RANSAC.mean rr)
                  | None -> ns
              in
              match Hashtbl.find_opt best name with
              | Some (ns', _) when ns' <= ns -> ()
              | _ -> Hashtbl.replace best name (ns, r2))
            analysis
      done;
      Hashtbl.iter (fun name (ns, r2) -> rows := (name, ns, r2) :: !rows) best)
    micro_tests;
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !rows

let print_micro rows =
  let table =
    Stats.Table.create ~title:"Microbenchmarks (Bechamel, monotonic clock)"
      ~columns:
        [
          ("benchmark", Stats.Table.Left);
          ("ns/run", Stats.Table.Right);
          ("r2", Stats.Table.Right);
        ]
  in
  List.iter
    (fun (name, ns, r2) ->
      Stats.Table.add_row table
        [
          name;
          Stats.Table.cell_f ~decimals:1 ns;
          Stats.Table.cell_f ~decimals:4 r2;
        ])
    rows;
  Stats.Table.print table

let run_micro () = print_micro (measure_micro ())

let run_tables ids =
  let ids = match ids with [] -> None | l -> Some l in
  Experiments.Runner.run_all ?ids ~out:Format.std_formatter ()

(* ------------------------------------------------------------------ *)
(* Machine-readable report *)

let json_of_micro rows =
  Stats.Json.List
    (List.map
       (fun (name, ns, r2) ->
         Stats.Json.Obj
           [
             ("name", Stats.Json.String name);
             ("ns_per_run", Stats.Json.Float ns);
             ("r2", Stats.Json.Float r2);
           ])
       rows)

let today () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

(* ------------------------------------------------------------------ *)
(* Pool speedup: the 200-seed fuzz soak and the pure-compute scenario
   sweep, timed at every distinct jobs count in {1, default_jobs()}.
   The summed delivered bytes and the failure count double as a
   determinism check across jobs values.  On a single-core host the
   list collapses to [1] and the recorded ratio is 1.0 — the figure is
   measured, never extrapolated. *)

type speedup_run = {
  sp_jobs : int;
  sp_fuzz_wall_s : float;
  sp_fuzz_failures : int;
  sp_sweep_wall_s : float;
  sp_sweep_delivered : int;
}

let speedup_fuzz_seeds = 200
let speedup_sweep_scenarios = 16

let measure_speedup () =
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let jobs_list =
    List.sort_uniq Int.compare [ 1; Engine.Pool.default_jobs () ]
  in
  List.map
    (fun jobs ->
      let soak, fuzz_wall =
        time (fun () -> Fuzz.Driver.soak ~jobs ~seeds:speedup_fuzz_seeds ())
      in
      let delivered, sweep_wall =
        time (fun () ->
            Scale.sweep ~jobs ~scenarios:speedup_sweep_scenarios ())
      in
      {
        sp_jobs = jobs;
        sp_fuzz_wall_s = fuzz_wall;
        sp_fuzz_failures = List.length soak.Fuzz.Driver.found;
        sp_sweep_wall_s = sweep_wall;
        sp_sweep_delivered = delivered;
      })
    jobs_list

let json_of_speedup runs =
  let base = List.hd runs in
  let ratio base_w w = if w > 0.0 then base_w /. w else 0.0 in
  Stats.Json.Obj
    [
      ("default_jobs", Stats.Json.Int (Engine.Pool.default_jobs ()));
      ("fuzz_seeds", Stats.Json.Int speedup_fuzz_seeds);
      ("sweep_scenarios", Stats.Json.Int speedup_sweep_scenarios);
      ( "runs",
        Stats.Json.List
          (List.map
             (fun r ->
               Stats.Json.Obj
                 [
                   ("jobs", Stats.Json.Int r.sp_jobs);
                   ("fuzz_wall_s", Stats.Json.Float r.sp_fuzz_wall_s);
                   ( "fuzz_speedup",
                     Stats.Json.Float
                       (ratio base.sp_fuzz_wall_s r.sp_fuzz_wall_s) );
                   ("fuzz_failures", Stats.Json.Int r.sp_fuzz_failures);
                   ("sweep_wall_s", Stats.Json.Float r.sp_sweep_wall_s);
                   ( "sweep_speedup",
                     Stats.Json.Float
                       (ratio base.sp_sweep_wall_s r.sp_sweep_wall_s) );
                   ("sweep_delivered", Stats.Json.Int r.sp_sweep_delivered);
                 ])
             runs) );
    ]

let print_speedup runs =
  let base = List.hd runs in
  List.iter
    (fun r ->
      Printf.printf
        "pool speedup (jobs=%d): fuzz %.2fs (%.2fx), sweep %.2fs (%.2fx)\n"
        r.sp_jobs r.sp_fuzz_wall_s
        (if r.sp_fuzz_wall_s > 0.0 then base.sp_fuzz_wall_s /. r.sp_fuzz_wall_s
         else 0.0)
        r.sp_sweep_wall_s
        (if r.sp_sweep_wall_s > 0.0 then
           base.sp_sweep_wall_s /. r.sp_sweep_wall_s
         else 0.0))
    runs

let report ?trace_overhead ?parallel_speedup ~mode ~micro ~scale_results () =
  let overhead_field =
    match trace_overhead with
    | None -> []
    | Some o -> [ ("trace_overhead", Scale.json_of_overhead o) ]
  in
  let speedup_field =
    match parallel_speedup with
    | None -> []
    | Some runs -> [ ("parallel_speedup", json_of_speedup runs) ]
  in
  Stats.Json.Obj
    ([
       ("schema", Stats.Json.String "vtp-bench-2");
       ("mode", Stats.Json.String mode);
       ("date", Stats.Json.String (today ()));
       ("micro", json_of_micro micro);
       ( "scale",
         Stats.Json.List (List.map Scale.json_of_result scale_results) );
       ("wheel_vs_heap", Stats.Json.List (Scale.json_ratios scale_results));
     ]
    @ overhead_field @ speedup_field)

let write_json path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Stats.Json.to_channel oc json);
  Printf.printf "wrote %s\n" path

let print_overhead (o : Scale.overhead) =
  Printf.printf
    "trace overhead (%d flows): %.0f -> %.0f events/s (%.1f%%), %d trace \
     events\n"
    o.Scale.oh_untraced.Scale.flows o.Scale.oh_untraced.Scale.events_per_sec
    o.Scale.oh_traced.Scale.events_per_sec
    (100.0 *. Scale.overhead_fraction o)
    o.Scale.oh_trace_events

let run_scale ~json_file ~jobs () =
  let micro = measure_micro () in
  print_micro micro;
  let results = Scale.suite ?jobs () in
  Stats.Table.print (Scale.table results);
  let overhead =
    Scale.trace_overhead ~repeats:25 ~n_flows:100 ~sim_seconds:4.0 ()
  in
  print_overhead overhead;
  let speedup = measure_speedup () in
  print_speedup speedup;
  let path =
    match json_file with
    | Some f -> f
    | None -> Printf.sprintf "BENCH_%s.json" (today ())
  in
  write_json path
    (report ~trace_overhead:overhead ~parallel_speedup:speedup ~mode:"scale"
       ~micro ~scale_results:results ())

let run_smoke ~json_file () =
  let results = Scale.smoke () in
  Stats.Table.print (Scale.table results);
  let overhead = Scale.trace_overhead ~n_flows:10 ~sim_seconds:2.0 () in
  print_overhead overhead;
  match json_file with
  | Some f ->
      write_json f
        (report ~trace_overhead:overhead ~mode:"smoke" ~micro:[]
           ~scale_results:results ())
  | None -> ()

let () =
  let rec extract_json acc = function
    | "--json" :: file :: rest -> (Some file, List.rev_append acc rest)
    | x :: rest -> extract_json (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let rec extract_jobs acc = function
    | "--jobs" :: n :: rest -> (Some (int_of_string n), List.rev_append acc rest)
    | x :: rest -> extract_jobs (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json_file, args =
    extract_json [] (List.tl (Array.to_list Sys.argv))
  in
  let jobs, args = extract_jobs [] args in
  match args with
  | "micro" :: _ -> (
      let micro = measure_micro () in
      print_micro micro;
      match json_file with
      | Some f ->
          write_json f (report ~mode:"micro" ~micro ~scale_results:[] ())
      | None -> ())
  | "scale" :: _ -> run_scale ~json_file ~jobs ()
  | "smoke" :: _ -> run_smoke ~json_file ()
  | "trunk" :: _ ->
      (* Just the trunking head-to-head, for iterating on the trunk
         scenario without paying for the full scale suite. *)
      Stats.Table.print
        (Scale.table
           [
             Scale.run_trunk ~sched:`Wheel ~seed:Scale.default_seed
               ~users:1000 ~sim_seconds:3.0 ();
             Scale.run_trunk_flat ~sched:`Wheel ~seed:Scale.default_seed
               ~users:1000 ~sim_seconds:3.0 ();
           ])
  | "overhead" :: _ -> (
      let overhead =
        Scale.trace_overhead ~repeats:25 ~n_flows:100 ~sim_seconds:4.0 ()
      in
      print_overhead overhead;
      match json_file with
      | Some f ->
          write_json f
            (report ~trace_overhead:overhead ~mode:"overhead" ~micro:[]
               ~scale_results:[] ())
      | None -> ())
  | "tables" :: ids -> run_tables ids
  | _ ->
      run_micro ();
      run_tables []
