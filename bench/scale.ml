(* Many-flow scale scenarios.

   Each scenario runs a mixed population — one third QTP_AF (reserved
   rate, full reliability), one third QTP_light (SACK-only feedback),
   one third TCP — over a shared RIO/AF bottleneck, and reports
   wall-clock, simulated-events-per-second throughput and peak heap
   words.  The 500-flow scenario is run under both event-queue backends
   on the same seed: the protocols restart their timers on every
   feedback, so the heap scheduler drags an ever-growing tail of
   cancelled entries while the wheel removes them eagerly — the ratio
   of the two throughputs is the headline number of this suite. *)

module Common = Experiments.Common

type result = {
  name : string;
  flows : int;
  sched : Engine.Sim.sched;
  seed : int;
  sim_seconds : float;
  wall_s : float;
  events : int;
  events_per_sec : float;
  max_heap_words : int;
  allocated_words : float;
  delivered_bytes : int;
}

let sched_name = function `Heap -> "heap" | `Wheel -> "wheel"

(* Peak heap size during [f], sampled at every major-GC cycle end (plus
   once after), so the figure is per-run rather than a process-lifetime
   high-water mark. *)
let with_gc_metrics f =
  let peak = ref 0 in
  let sample () =
    let s = Gc.quick_stat () in
    if s.Gc.heap_words > !peak then peak := s.Gc.heap_words
  in
  Gc.full_major ();
  let before = Gc.quick_stat () in
  let alarm = Gc.create_alarm sample in
  let started = Unix.gettimeofday () in
  let x = f () in
  let wall = Unix.gettimeofday () -. started in
  Gc.delete_alarm alarm;
  sample ();
  let after = Gc.quick_stat () in
  let words s = s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words in
  (x, wall, !peak, words after -. words before)

(* One third reserved QTP_AF, one third QTP_light, the rest TCP; the
   bottleneck is provisioned at 1 Mb/s per flow with 40% of it reserved
   for the AF class.  [tracer], when given, is installed before any
   transport attaches so the recorded operation stream is complete. *)
let setup ?tracer ?bottleneck_delay ?capacity_pkts ~sched ~seed ~n_flows () =
  let n_af = n_flows / 3 in
  let n_light = n_flows / 3 in
  let bottleneck_mbps = float_of_int n_flows *. 1.0 in
  let g_mbps = 0.4 in
  let committed =
    Array.init n_flows (fun i -> if i < n_af then g_mbps else 0.0)
  in
  let sim, topo =
    Common.af_dumbbell ~sched ?capacity_pkts ~seed ~n_flows ~bottleneck_mbps
      ?bottleneck_delay ~committed_mbps:committed ()
  in
  Engine.Sim.set_tracer sim tracer;
  let qtp_conns = ref [] in
  let tcp_flows = ref [] in
  for i = 0 to n_flows - 1 do
    let endpoint = Netsim.Topology.endpoint topo i in
    if i < n_af then begin
      let agreed =
        Qtp.Profile.agreed_exn
          (Qtp.Profile.qtp_af ~g_bps:(Common.mbps g_mbps) ())
          (Qtp.Profile.anything ())
      in
      let c =
        Qtp.Connection.create ~sim ~endpoint
          (Qtp.Connection.config ~initial_rtt:0.2 agreed)
      in
      qtp_conns := c :: !qtp_conns
    end
    else if i < n_af + n_light then begin
      let agreed =
        Qtp.Profile.agreed_exn
          (Qtp.Profile.qtp_light ())
          (Qtp.Profile.anything ())
      in
      let c =
        Qtp.Connection.create ~sim ~endpoint
          (Qtp.Connection.config ~initial_rtt:0.2 agreed)
      in
      qtp_conns := c :: !qtp_conns
    end
    else begin
      let f = Tcp.Flow.create ~sim ~endpoint () in
      tcp_flows := f :: !tcp_flows
    end
  done;
  let delivered () =
    let total = ref 0 in
    List.iter
      (fun c -> total := !total + Qtp.Connection.delivered c)
      !qtp_conns;
    List.iter
      (fun f ->
        total := !total + Stats.Series.total_bytes (Tcp.Flow.goodput_series f))
      !tcp_flows;
    !total
  in
  (sim, delivered)

let run_scenario ?bottleneck_delay ?capacity_pkts ~name ~sched ~seed ~n_flows
    ~sim_seconds () =
  let (events, delivered), wall, peak, allocated =
    with_gc_metrics (fun () ->
        let sim, delivered =
          setup ?bottleneck_delay ?capacity_pkts ~sched ~seed ~n_flows ()
        in
        Engine.Sim.run ~until:sim_seconds sim;
        (Engine.Sim.executed sim, delivered ()))
  in
  {
    name;
    flows = n_flows;
    sched;
    seed;
    sim_seconds;
    wall_s = wall;
    events;
    events_per_sec = (if wall > 0.0 then float_of_int events /. wall else 0.0);
    max_heap_words = peak;
    allocated_words = allocated;
    delivered_bytes = delivered;
  }

(* Mobility at scale: [n_flows] independent single-flow mobile
   topologies in one simulation, each migrating across its own WiFi ->
   cellular -> satellite triple (a drain then a hard cut) with the
   informed rate policy.  Prices the handover machinery — link
   severing, path re-homing, policy re-seeds — under many concurrent
   migrations. *)
let setup_handover ~sched ~seed ~n_flows () =
  let sim = Engine.Sim.create ~seed ~sched () in
  let paths = [ (8.0, 0.008); (1.5, 0.060); (2.0, 0.270) ] in
  let conns = ref [] in
  for i = 0 to n_flows - 1 do
    let spec_of (rate_mbps, delay) =
      Netsim.Topology.spec ~rate_bps:(rate_mbps *. 1e6) ~delay
        ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:60)
        ()
    in
    let m = Netsim.Topology.mobile ~sim ~paths:(List.map spec_of paths) () in
    let topo = Netsim.Topology.mobile_net m in
    let agreed =
      Qtp.Profile.agreed_exn
        (Qtp.Profile.qtp_light ~reliability:[ Qtp.Capabilities.R_full ] ())
        (Qtp.Profile.anything ())
    in
    let cfg =
      Qtp.Connection.config ~initial_rtt:0.05 ~handover:`Informed agreed
    in
    let conn =
      Qtp.Connection.create ~sim
        ~endpoint:(Netsim.Topology.endpoint topo 0)
        ~start_at:(0.003 *. float_of_int i)
        cfg
    in
    Netsim.Topology.on_migrate m (fun idx ->
        Qtp.Connection.notify_migration conn
          ~link:(Common.declared_link m idx));
    let jitter = 0.01 *. float_of_int i in
    Netsim.Topology.apply_schedule m
      [ (0.8 +. jitter, 1, `Drain); (1.6 +. jitter, 2, `Cut) ];
    conns := conn :: !conns
  done;
  let delivered () =
    List.fold_left (fun n c -> n + Qtp.Connection.delivered c) 0 !conns
  in
  (sim, delivered)

let run_handover ~sched ~seed ~n_flows ~sim_seconds () =
  let (events, delivered), wall, peak, allocated =
    with_gc_metrics (fun () ->
        let sim, delivered = setup_handover ~sched ~seed ~n_flows () in
        Engine.Sim.run ~until:sim_seconds sim;
        (Engine.Sim.executed sim, delivered ()))
  in
  {
    name = "scale_handover";
    flows = n_flows;
    sched;
    seed;
    sim_seconds;
    wall_s = wall;
    events;
    events_per_sec = (if wall > 0.0 then float_of_int events /. wall else 0.0);
    max_heap_words = peak;
    allocated_words = allocated;
    delivered_bytes = delivered;
  }

(* Trunking at scale: the same user population carried two ways over
   one 50 Mb/s AF bottleneck.  [run_trunk] multiplexes [users]
   micro-flows into ONE gTFRC connection through a {!Trunk.Mux} (one
   TFRC estimator, one scoreboard, one timer set for everyone);
   [run_trunk_flat] opens a QTP_AF connection per user with the same
   aggregate reservation split into per-user crumbs.  The events/sec
   ratio prices the per-connection machinery the trunk amortises. *)
let trunk_g_mbps = 20.0

let trunk_bottleneck_mbps = 50.0

let setup_trunk ~sched ~seed ~users ~sim_seconds () =
  let sim, topo =
    Common.af_dumbbell ~sched ~seed ~n_flows:1
      ~bottleneck_mbps:trunk_bottleneck_mbps
      ~committed_mbps:[| trunk_g_mbps |] ()
  in
  (* audit:false — the conservation digests are the trunk auditing
     itself (tests and the fuzz band keep them on); the per-flow arm
     moves no payload bytes at all, so pricing the audit into the
     events/sec ratio would measure the instrument, not the trunk. *)
  let mux = Trunk.Mux.create (Trunk.Mux.config ~audit:false ~users ()) in
  let agreed =
    Qtp.Profile.agreed_exn
      (Qtp.Profile.qtp_af ~g_bps:(Common.mbps trunk_g_mbps) ())
      (Qtp.Profile.anything ())
  in
  let conn =
    Qtp.Connection.create ~sim
      ~endpoint:(Netsim.Topology.endpoint topo 0)
      ~source:(Trunk.Mux.source mux)
      (Qtp.Connection.config ~initial_rtt:0.2 agreed)
  in
  Trunk.Mux.attach mux ~conn
    ~seg_payload:(1500 - Packet.Header.data_header_bytes);
  (* Size the offered load to keep the trunk backlogged without
     admitting far more than the reservation can carry — admission
     accounting is per-byte work that would otherwise dominate the
     wall clock and price the feed harness instead of the trunk. *)
  let per_user =
    int_of_float (Common.mbps trunk_g_mbps *. sim_seconds /. 8.0)
    * 5 / 4 / users
  in
  ignore
    (Trunk.Mux.feed mux ~sim ~workloads:(Array.make users per_user)
       ~stop_at:sim_seconds ());
  let delivered () =
    let total = ref 0 in
    for u = 0 to users - 1 do
      total := !total + Trunk.Mux.delivered_bytes mux ~user:u
    done;
    !total
  in
  (sim, delivered)

let setup_trunk_flat ~sched ~seed ~users () =
  let per_user = trunk_g_mbps /. float_of_int users in
  let sim, topo =
    Common.af_dumbbell ~sched ~seed ~n_flows:users
      ~bottleneck_mbps:trunk_bottleneck_mbps
      ~committed_mbps:(Array.make users per_user) ()
  in
  let conns =
    Array.init users (fun i ->
        let agreed =
          Qtp.Profile.agreed_exn
            (Qtp.Profile.qtp_af ~g_bps:(Common.mbps per_user) ())
            (Qtp.Profile.anything ())
        in
        (* Stagger the handshakes: a thousand simultaneous SYNs into
           one bottleneck all drop and back off together, leaving the
           population stuck instead of transferring. *)
        Qtp.Connection.create ~sim
          ~endpoint:(Netsim.Topology.endpoint topo i)
          ~start_at:(0.001 *. float_of_int i)
          (Qtp.Connection.config ~initial_rtt:0.2 agreed))
  in
  let delivered () =
    Array.fold_left (fun n c -> n + Qtp.Connection.delivered c) 0 conns
  in
  (sim, delivered)

let run_trunk_arm ~name ~setup ~sched ~seed ~users ~sim_seconds () =
  let (events, delivered), wall, peak, allocated =
    with_gc_metrics (fun () ->
        let sim, delivered = setup () in
        Engine.Sim.run ~until:sim_seconds sim;
        (Engine.Sim.executed sim, delivered ()))
  in
  {
    name;
    flows = users;
    sched;
    seed;
    sim_seconds;
    wall_s = wall;
    events;
    events_per_sec = (if wall > 0.0 then float_of_int events /. wall else 0.0);
    max_heap_words = peak;
    allocated_words = allocated;
    delivered_bytes = delivered;
  }

let run_trunk ~sched ~seed ~users ~sim_seconds () =
  run_trunk_arm ~name:"scale_trunk"
    ~setup:(fun () -> setup_trunk ~sched ~seed ~users ~sim_seconds ())
    ~sched ~seed ~users ~sim_seconds ()

let run_trunk_flat ~sched ~seed ~users ~sim_seconds () =
  run_trunk_arm ~name:"scale_trunk_flat"
    ~setup:(fun () -> setup_trunk_flat ~sched ~seed ~users ())
    ~sched ~seed ~users ~sim_seconds ()

let default_seed = 42

(* ------------------------------------------------------------------ *)
(* Scheduler-only replay.

   Whole-scenario events/sec mixes scheduler cost with protocol work
   (TFRC arithmetic, SACK bookkeeping, queueing), which drowns the
   queue backends' difference.  To isolate the scheduler we record the
   raw operation stream — schedule/cancel/pop — of the 500-flow
   scenario once via {!Engine.Sim.set_tracer}, then replay that exact
   stream against each bare backend.  Sequence numbers are assigned in
   schedule order on both sides, so a recorded [T_cancel seq] addresses
   the same logical event in the replay. *)

let record_trace ~seed ~n_flows ~sim_seconds =
  let ops = ref [] in
  let sim, _delivered =
    setup ~tracer:(fun op -> ops := op :: !ops) ~sched:`Wheel ~seed ~n_flows ()
  in
  Engine.Sim.run ~until:sim_seconds sim;
  Engine.Sim.set_tracer sim None;
  Array.of_list (List.rev !ops)

let fresh_ev time seq =
  let ev = Engine.Event.make_dummy () in
  ev.Engine.Event.time <- time;
  ev.Engine.Event.seq <- seq;
  ev.Engine.Event.live <- true;
  ev

(* Replays mirror what {!Engine.Sim} does with each backend: the wheel
   unlinks cancelled events eagerly, the heap marks them dead and sheds
   the corpses as they surface at the top.  Returns the number of live
   pops (identical across backends by construction). *)
let replay ~sched ops =
  let n_sched =
    Array.fold_left
      (fun n op ->
        match op with Engine.Sim.T_schedule _ -> n + 1 | _ -> n)
      0 ops
  in
  let evs = Array.make (max 1 n_sched) (Engine.Event.make_dummy ()) in
  let pops = ref 0 in
  (match sched with
  | `Wheel ->
      let w = Engine.Wheel.create () in
      let next = ref 0 in
      Array.iter
        (fun op ->
          match op with
          | Engine.Sim.T_schedule time ->
              let ev = fresh_ev time !next in
              evs.(!next) <- ev;
              incr next;
              Engine.Wheel.add w ev
          | Engine.Sim.T_cancel seq ->
              let ev = evs.(seq) in
              ev.Engine.Event.live <- false;
              ignore (Engine.Wheel.remove w ev : bool)
          | Engine.Sim.T_pop -> (
              match Engine.Wheel.pop_min w with
              | Some _ -> incr pops
              | None -> failwith "sched replay: wheel underflow"))
        ops
  | `Heap ->
      let h = Engine.Heap.create ~compare:Engine.Event.compare in
      let next = ref 0 in
      Array.iter
        (fun op ->
          match op with
          | Engine.Sim.T_schedule time ->
              let ev = fresh_ev time !next in
              evs.(!next) <- ev;
              incr next;
              Engine.Heap.add h ev
          | Engine.Sim.T_cancel seq -> evs.(seq).Engine.Event.live <- false
          | Engine.Sim.T_pop ->
              let rec pop_live () =
                match Engine.Heap.pop_min h with
                | None -> failwith "sched replay: heap underflow"
                | Some ev -> if ev.Engine.Event.live then incr pops else pop_live ()
              in
              pop_live ())
        ops);
  !pops

let sched_replay ?(seed = default_seed) () =
  let n_flows = 500 and sim_seconds = 2.0 in
  let ops = record_trace ~seed ~n_flows ~sim_seconds in
  let run sched =
    let pops, wall, peak, allocated =
      with_gc_metrics (fun () -> replay ~sched ops)
    in
    {
      name = "scale_500_sched";
      flows = n_flows;
      sched;
      seed;
      sim_seconds;
      wall_s = wall;
      events = pops;
      events_per_sec = (if wall > 0.0 then float_of_int pops /. wall else 0.0);
      max_heap_words = peak;
      allocated_words = allocated;
      delivered_bytes = 0;
    }
  in
  [ run `Wheel; run `Heap ]

(* ------------------------------------------------------------------ *)
(* Tracing overhead.

   The flight recorder is meant to be cheap enough to leave on: every
   instrumentation site is a single [Trace.Sink.on]/[Trace.Recorder.on]
   branch when no recorder is installed, and a ring push when one is.
   To price that claim we run the same scenario twice on one seed —
   once bare, once under an ambient recorder — and report both
   events/sec figures plus the fractional slowdown.  The acceptance
   bar is <= 10% on the 100-flow scenario.

   Wall-clock on sub-second runs is noisy (scheduling, cache state),
   so each variant is measured [repeats] times, interleaved, and the
   best run of each is compared — the standard way to estimate the
   cost floor rather than the noise envelope. *)

type overhead = {
  oh_untraced : result;
  oh_traced : result;
  oh_trace_events : int;
}

let trace_overhead ?(seed = default_seed) ?(repeats = 5) ~n_flows ~sim_seconds
    () =
  let run ~traced =
    let (events, delivered, trace_events), wall, peak, allocated =
      with_gc_metrics (fun () ->
          let body () =
            let sim, delivered = setup ~sched:`Wheel ~seed ~n_flows () in
            Engine.Sim.run ~until:sim_seconds sim;
            (Engine.Sim.executed sim, delivered ())
          in
          if traced then
            let (events, delivered), recorder =
              Trace.Recorder.with_recorder body
            in
            (events, delivered, Trace.Recorder.events recorder)
          else
            let events, delivered = body () in
            (events, delivered, 0))
    in
    ( {
        name = (if traced then "trace_on" else "trace_off");
        flows = n_flows;
        sched = `Wheel;
        seed;
        sim_seconds;
        wall_s = wall;
        events;
        events_per_sec =
          (if wall > 0.0 then float_of_int events /. wall else 0.0);
        max_heap_words = peak;
        allocated_words = allocated;
        delivered_bytes = delivered;
      },
      trace_events )
  in
  let best a b = if b.events_per_sec > a.events_per_sec then b else a in
  let untraced = ref (fst (run ~traced:false)) in
  let first_traced, trace_events = run ~traced:true in
  let traced = ref first_traced in
  for _ = 2 to repeats do
    untraced := best !untraced (fst (run ~traced:false));
    traced := best !traced (fst (run ~traced:true))
  done;
  {
    oh_untraced = !untraced;
    oh_traced = !traced;
    oh_trace_events = trace_events;
  }

let overhead_fraction o =
  if o.oh_untraced.events_per_sec > 0.0 then
    1.0 -. (o.oh_traced.events_per_sec /. o.oh_untraced.events_per_sec)
  else 0.0

let json_of_overhead o =
  Stats.Json.Obj
    [
      ("flows", Stats.Json.Int o.oh_untraced.flows);
      ("seed", Stats.Json.Int o.oh_untraced.seed);
      ("sim_seconds", Stats.Json.Float o.oh_untraced.sim_seconds);
      ( "untraced_events_per_sec",
        Stats.Json.Float o.oh_untraced.events_per_sec );
      ("traced_events_per_sec", Stats.Json.Float o.oh_traced.events_per_sec);
      ("trace_events", Stats.Json.Int o.oh_trace_events);
      ("overhead_fraction", Stats.Json.Float (overhead_fraction o));
      ( "delivered_bytes_match",
        Stats.Json.Bool
          (o.oh_untraced.delivered_bytes = o.oh_traced.delivered_bytes) );
    ]

(* The suite: growing populations under the default (wheel) scheduler,
   a heap rerun of the largest scenario for the whole-stack
   head-to-head, and the scheduler-only trace replay of the same
   workload (the headline wheel-vs-heap number).

   [jobs] defaults to 1, not {!Engine.Pool.default_jobs}: wall-clock and
   peak-heap are the product here, and co-scheduled scenarios contend
   for cores and share the major heap, so parallel runs are opt-in
   (faster, but only events/delivered figures stay comparable).
   Results come back in submission order either way. *)
let suite ?(seed = default_seed) ?(jobs = 1) () =
  (* [scale_lfn] is the long-fat-network point: the same mixed
     population over a 250 ms-RTT bottleneck buffered at roughly one
     bandwidth-delay product, so every flow's scoreboard / tracker /
     loss history carries hundreds of packets between feedbacks. *)
  let default_path = (None, None) in
  let lfn_path = (Some 0.125, Some 625) in
  let configs =
    [|
      ("scale_10", `Wheel, 10, 10.0, default_path);
      ("scale_100", `Wheel, 100, 4.0, default_path);
      ("scale_500", `Wheel, 500, 2.0, default_path);
      ("scale_500", `Heap, 500, 2.0, default_path);
      (* The single-sim scale points: shared profiles and slab-packed
         flow state are what keep the peak-heap-per-flow density flat
         from 500 to 10k flows (the per-flow gate in vtp_bench_diff
         rides on these rows). *)
      ("scale_2k", `Wheel, 2000, 1.0, default_path);
      ("scale_10k", `Wheel, 10000, 0.5, default_path);
      ("scale_lfn", `Wheel, 30, 4.0, lfn_path);
    |]
  in
  let results =
    Engine.Pool.with_pool ~jobs (fun pool ->
        Engine.Pool.map pool
          (fun (name, sched, n_flows, sim_seconds, (delay, capacity)) ->
            run_scenario ?bottleneck_delay:delay ?capacity_pkts:capacity ~name
              ~sched ~seed ~n_flows ~sim_seconds ())
          configs)
  in
  Array.to_list results
  @ [
      run_handover ~sched:`Wheel ~seed ~n_flows:60 ~sim_seconds:2.5 ();
      run_trunk ~sched:`Wheel ~seed ~users:1000 ~sim_seconds:3.0 ();
      run_trunk_flat ~sched:`Wheel ~seed ~users:1000 ~sim_seconds:3.0 ();
    ]
  @ sched_replay ~seed ()

(* Pure-compute scenario sweep for the pool-speedup measurement: many
   independent 20-flow simulations, deliberately without the GC
   instrumentation ([with_gc_metrics] samples the process-wide major
   heap, the one metric that cannot be attributed per-task under
   concurrency).  Returns the summed delivered bytes — a determinism
   check, identical at any [jobs]. *)
let sweep ?(seed = default_seed) ?jobs ?(scenarios = 16) () =
  Engine.Pool.with_pool ?jobs (fun pool ->
      Engine.Pool.tabulate pool scenarios (fun i ->
          let sim, delivered =
            setup ~sched:`Wheel ~seed:(seed + i) ~n_flows:20 ()
          in
          Engine.Sim.run ~until:2.0 sim;
          delivered ()))
  |> Array.fold_left ( + ) 0

(* One fast scenario for @bench-smoke: 10 flows, 2 simulated seconds. *)
let smoke ?(seed = default_seed) () =
  [
    run_scenario ~name:"smoke_10" ~sched:`Wheel ~seed ~n_flows:10
      ~sim_seconds:2.0 ();
  ]

let json_of_result r =
  Stats.Json.Obj
    [
      ("name", Stats.Json.String r.name);
      ("flows", Stats.Json.Int r.flows);
      ("sched", Stats.Json.String (sched_name r.sched));
      ("seed", Stats.Json.Int r.seed);
      ("sim_seconds", Stats.Json.Float r.sim_seconds);
      ("wall_s", Stats.Json.Float r.wall_s);
      ("events", Stats.Json.Int r.events);
      ("events_per_sec", Stats.Json.Float r.events_per_sec);
      ("max_heap_words", Stats.Json.Int r.max_heap_words);
      ("allocated_words", Stats.Json.Float r.allocated_words);
      ("delivered_bytes", Stats.Json.Int r.delivered_bytes);
    ]

(* The wheel/heap throughput ratio for every scenario run under both
   backends (keyed by name + seed). *)
let json_ratios results =
  let pairs =
    List.filter_map
      (fun r ->
        if r.sched = `Wheel then
          List.find_opt
            (fun h -> h.sched = `Heap && h.name = r.name && h.seed = r.seed)
            results
          |> Option.map (fun h -> (r, h))
        else None)
      results
  in
  List.map
    (fun ((w : result), (h : result)) ->
      Stats.Json.Obj
        [
          ("scenario", Stats.Json.String w.name);
          ("seed", Stats.Json.Int w.seed);
          ("wheel_events_per_sec", Stats.Json.Float w.events_per_sec);
          ("heap_events_per_sec", Stats.Json.Float h.events_per_sec);
          ( "wheel_over_heap",
            Stats.Json.Float
              (if h.events_per_sec > 0.0 then
                 w.events_per_sec /. h.events_per_sec
               else 0.0) );
        ])
    pairs

let table results =
  let t =
    Stats.Table.create ~title:"Scale scenarios (mixed QTP_AF/QTP_light/TCP)"
      ~columns:
        [
          ("scenario", Stats.Table.Left);
          ("sched", Stats.Table.Left);
          ("flows", Stats.Table.Right);
          ("sim s", Stats.Table.Right);
          ("wall s", Stats.Table.Right);
          ("events", Stats.Table.Right);
          ("events/s", Stats.Table.Right);
          ("peak heap Mw", Stats.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          r.name;
          sched_name r.sched;
          Stats.Table.cell_i r.flows;
          Stats.Table.cell_f ~decimals:1 r.sim_seconds;
          Stats.Table.cell_f ~decimals:2 r.wall_s;
          Stats.Table.cell_i r.events;
          Stats.Table.cell_f ~decimals:0 r.events_per_sec;
          Stats.Table.cell_f ~decimals:2
            (float_of_int r.max_heap_words /. 1e6);
        ])
    results;
  t
