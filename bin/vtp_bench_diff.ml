(* CLI: compare two bench reports and gate on regressions.

   Reads two JSON files written by `bench/main.exe -- scale/smoke/micro
   --json F` (schema vtp-bench-1 or vtp-bench-2) and compares every
   benchmark present in both:

     - micro rows by name: ns_per_run higher than baseline is a
       regression;
     - scale rows by name+sched+flows+seed: events_per_sec lower than
       baseline is a regression;
     - the same scale rows again as max_heap_words/flows: per-flow
       memory density higher than baseline is a regression (the
       many-flow scenarios gate footprint as well as speed).

   Exit 1 if any comparison regresses by more than the threshold
   (default 15%), 2 on malformed input.  Rows present on only one side
   are reported but never gate — suites are allowed to grow.

   Examples:
     vtp_bench_diff BENCH_2026-08-07.json BENCH_2026-09-01.json
     vtp_bench_diff --threshold 0.05 old.json new.json *)

open Cmdliner

module J = Stats.Json

let threshold =
  Arg.(
    value & opt float 0.15
    & info [ "threshold" ] ~docv:"FRAC"
        ~doc:"Fractional regression that fails the comparison (0.15 = 15%).")

let baseline =
  Arg.(
    required & pos 0 (some file) None
    & info [] ~docv:"BASELINE" ~doc:"Baseline bench JSON.")

let candidate =
  Arg.(
    required & pos 1 (some file) None
    & info [] ~docv:"CANDIDATE" ~doc:"Candidate bench JSON.")

let read_report path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  let json = J.of_string text in
  (match J.member "schema" json with
  | Some (J.String ("vtp-bench-1" | "vtp-bench-2")) -> ()
  | Some (J.String s) ->
      raise (J.Parse_error (Printf.sprintf "%s: unknown schema %S" path s))
  | Some _ | None ->
      raise (J.Parse_error (path ^ ": missing \"schema\" field")));
  json

let as_float = function
  | J.Int i -> Some (float_of_int i)
  | J.Float f -> Some f
  | J.Null | J.Bool _ | J.String _ | J.List _ | J.Obj _ -> None

let as_list = function Some (J.List l) -> l | _ -> []

let str_member key obj =
  match J.member key obj with Some (J.String s) -> Some s | _ -> None

let num_member key obj = Option.bind (J.member key obj) as_float

(* (key, metric) rows of one report section.  [metric] is None when the
   field is missing or non-numeric — such rows are skipped. *)
let micro_rows json =
  List.filter_map
    (fun row ->
      match (str_member "name" row, num_member "ns_per_run" row) with
      | Some name, Some ns -> Some ("micro " ^ name, ns)
      | _ -> None)
    (as_list (J.member "micro" json))

let scale_key row =
  match (str_member "name" row, str_member "sched" row) with
  | Some name, Some sched ->
      let flows =
        match num_member "flows" row with
        | Some f -> string_of_int (int_of_float f)
        | None -> "?"
      and seed =
        match num_member "seed" row with
        | Some s -> string_of_int (int_of_float s)
        | None -> "?"
      in
      Some (Printf.sprintf "scale %s/%s flows=%s seed=%s" name sched flows seed)
  | _ -> None

let scale_rows json =
  List.filter_map
    (fun row ->
      match (scale_key row, num_member "events_per_sec" row) with
      | Some key, Some eps -> Some (key, eps)
      | _ -> None)
    (as_list (J.member "scale" json))

(* Peak heap words divided by the flow count: the memory-density gate
   for the many-flow scenarios.  Lower is better; a candidate whose
   per-flow footprint grows past the threshold fails even if its
   throughput improved. *)
let heap_rows json =
  List.filter_map
    (fun row ->
      match
        (scale_key row, num_member "max_heap_words" row, num_member "flows" row)
      with
      | Some key, Some words, Some flows when flows > 0.0 ->
          Some (key, words /. flows)
      | _ -> None)
    (as_list (J.member "scale" json))

type verdict = Regressed of float | Improved of float | Flat of float

(* [higher_is_better]: events/sec.  Otherwise lower is better: ns/run. *)
let judge ~threshold ~higher_is_better ~base ~cand =
  if base <= 0.0 then Flat 0.0
  else
    let change = (cand -. base) /. base in
    let regression = if higher_is_better then -.change else change in
    if regression > threshold then Regressed regression
    else if regression < 0.0 then Improved (-.regression)
    else Flat regression

let compare_section ~threshold ~higher_is_better ~label base_rows cand_rows =
  let regressions = ref 0 in
  List.iter
    (fun (key, base) ->
      match List.assoc_opt key cand_rows with
      | None -> Printf.printf "  %-52s only in baseline\n" key
      | Some cand -> (
          match judge ~threshold ~higher_is_better ~base ~cand with
          | Regressed r ->
              incr regressions;
              Printf.printf "  %-52s %12.1f -> %12.1f  REGRESSED %.1f%%\n" key
                base cand (100.0 *. r)
          | Improved i ->
              Printf.printf "  %-52s %12.1f -> %12.1f  improved %.1f%%\n" key
                base cand (100.0 *. i)
          | Flat r ->
              Printf.printf "  %-52s %12.1f -> %12.1f  within noise (%.1f%%)\n"
                key base cand (100.0 *. r)))
    base_rows;
  List.iter
    (fun (key, _) ->
      if List.assoc_opt key base_rows = None then
        Printf.printf "  %-52s only in candidate\n" key)
    cand_rows;
  if base_rows <> [] || cand_rows <> [] then
    Printf.printf "%s: %d compared, %d regressed\n" label
      (List.length
         (List.filter (fun (k, _) -> List.mem_assoc k cand_rows) base_rows))
      !regressions;
  !regressions

let run threshold baseline candidate =
  match (read_report baseline, read_report candidate) with
  | exception J.Parse_error msg ->
      Printf.eprintf "vtp_bench_diff: %s\n" msg;
      2
  | exception Sys_error msg ->
      Printf.eprintf "vtp_bench_diff: %s\n" msg;
      2
  | base, cand ->
      Printf.printf "baseline:  %s\ncandidate: %s\nthreshold: %.0f%%\n\n"
        baseline candidate (100.0 *. threshold);
      let micro =
        compare_section ~threshold ~higher_is_better:false
          ~label:"micro (ns/run)" (micro_rows base) (micro_rows cand)
      in
      let scale =
        compare_section ~threshold ~higher_is_better:true
          ~label:"scale (events/sec)" (scale_rows base) (scale_rows cand)
      in
      let heap =
        compare_section ~threshold ~higher_is_better:false
          ~label:"scale (peak heap words/flow)" (heap_rows base)
          (heap_rows cand)
      in
      let scale = scale + heap in
      if micro + scale = 0 then begin
        Printf.printf "\nvtp_bench_diff: no regressions beyond %.0f%%\n"
          (100.0 *. threshold);
        0
      end
      else begin
        Printf.printf "\nvtp_bench_diff: %d regression(s) beyond %.0f%%\n"
          (micro + scale) (100.0 *. threshold);
        1
      end

let cmd =
  let doc = "Compare two vtp bench reports; fail on perf regressions." in
  Cmd.v
    (Cmd.info "vtp_bench_diff" ~doc)
    Term.(const run $ threshold $ baseline $ candidate)

let () = exit (Cmd.eval' cmd)
