(* CLI: run the paper-reproduction experiment suite (E1..E16 + ablations).

   Examples:
     vtp_experiments                 # everything
     vtp_experiments e1 e5 e7        # a subset
     vtp_experiments --list          # what exists
     vtp_experiments --seed 7 e9     # different RNG seed
     vtp_experiments --jobs 8        # fan entries over 8 domains *)

open Cmdliner

let list_flag =
  Arg.(value & flag & info [ "list" ] ~doc:"List available experiments and exit.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Root RNG seed.")

let csv =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of aligned tables.")

let checked =
  Arg.(
    value & flag
    & info [ "checked" ]
        ~doc:
          "Run every scenario under the protocol-invariant checker; abort \
           with a diagnostic on the first violation.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Run every scenario with the flight recorder live and print each \
           entry's event count and canonical trace digest.")

let jobs =
  Arg.(
    value & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for the fan-out (default $(b,VTP_JOBS) if set, \
              else the recommended domain count).  Output is identical at \
              any value.")

let ids =
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")

let run list_only seed csv checked trace jobs ids =
  if list_only then begin
    List.iter
      (fun (e : Experiments.Runner.entry) ->
        Format.printf "%-4s %s@.     %s@." e.Experiments.Runner.id
          e.Experiments.Runner.title e.Experiments.Runner.claim)
      Experiments.Runner.all;
    `Ok ()
  end
  else begin
    let unknown =
      List.filter (fun id -> Experiments.Runner.find id = None) ids
    in
    match unknown with
    | _ :: _ ->
        `Error (false, "unknown experiment id(s): " ^ String.concat ", " unknown)
    | [] ->
        let ids = match ids with [] -> None | l -> Some l in
        let format = if csv then `Csv else `Table in
        (try
           Experiments.Runner.run_all ~seed ?ids ~format ~checked ~trace ?jobs
             ~out:Format.std_formatter ();
           `Ok ()
         with Analysis.Invariants.Violation v ->
           `Error
             ( false,
               Format.asprintf "%a" Analysis.Invariants.pp_violation v ))
  end

let cmd =
  let doc =
    "Regenerate the evaluation tables of 'Towards a Versatile Transport \
     Protocol' (CoNEXT'06)."
  in
  Cmd.v
    (Cmd.info "vtp_experiments" ~doc)
    Term.(
      ret (const run $ list_flag $ seed $ csv $ checked $ trace $ jobs $ ids))

let () = exit (Cmd.eval cmd)
