(* CLI: the deterministic scenario fuzzer.

   Examples:
     vtp_fuzz --seeds 200            # soak seeds 1..200
     vtp_fuzz --seeds 200 --shrink   # and minimise any failure found
     vtp_fuzz --replay 1337          # re-run one seed, full report
     vtp_fuzz --matrix --seeds 60    # 10 seeds per profile/mode cell
     vtp_fuzz --smoke                # the fixed 25-seed corpus (@fuzz-smoke)

   Every run is a pure function of its seeds: the same invocation
   prints the same bytes.  Exit code 0 iff no scenario failed. *)

open Cmdliner

let seeds =
  Arg.(
    value & opt int 50
    & info [ "seeds" ] ~docv:"N"
        ~doc:"Number of scenarios to run (with $(b,--matrix): total across \
              the six cells).")

let base =
  Arg.(
    value & opt int 1
    & info [ "base" ] ~docv:"SEED" ~doc:"First seed of the sweep.")

let replay =
  Arg.(
    value & opt (some int) None
    & info [ "replay" ] ~docv:"SEED"
        ~doc:"Re-run a single seed and print its full report.")

let shrink =
  Arg.(
    value & flag
    & info [ "shrink" ]
        ~doc:"Greedily minimise every failing scenario before reporting it.")

let matrix =
  Arg.(
    value & flag
    & info [ "matrix" ]
        ~doc:"Sweep the six profile/reliability compositions instead of \
              free-sampling profiles.")

let smoke =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:"Run the fixed 25-seed corpus (what dune's @fuzz-smoke alias \
              executes).")

let verbose =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Print a line per scenario as it runs.")

let print_found (f : Fuzz.Driver.found) =
  Format.printf "@.--- FAILURE ---@.%a@." Fuzz.Exec.pp_report f.Fuzz.Driver.report;
  (match f.Fuzz.Driver.shrunk with
  | None -> ()
  | Some o ->
      Format.printf
        "@.shrunk (%d simplification(s), %d execution(s)):@.%a@."
        o.Fuzz.Shrink.steps o.Fuzz.Shrink.executions Fuzz.Scenario.pp
        o.Fuzz.Shrink.shrunk);
  Format.printf "replay: vtp_fuzz --replay %d@."
    f.Fuzz.Driver.report.Fuzz.Exec.scenario.Fuzz.Scenario.seed

let progress_of verbose =
  if verbose then
    Some
      (fun seed (r : Fuzz.Exec.report) ->
        Format.printf "%s %s@."
          (if Fuzz.Exec.passed r then "pass" else "FAIL")
          (Fuzz.Scenario.summary r.Fuzz.Exec.scenario);
        ignore seed)
  else None

let summarise (s : Fuzz.Driver.soak) =
  Format.printf
    "@.%d scenario(s), %d failing, %d benign handshake timeout(s)@."
    s.Fuzz.Driver.runs
    (List.length s.Fuzz.Driver.found)
    s.Fuzz.Driver.handshake_timeouts;
  List.iter print_found s.Fuzz.Driver.found;
  if s.Fuzz.Driver.found = [] then 0 else 1

let run seeds base replay shrink matrix smoke verbose =
  match replay with
  | Some seed ->
      let f = Fuzz.Driver.run_seed ~shrink seed in
      Format.printf "%a@." Fuzz.Exec.pp_report f.Fuzz.Driver.report;
      (match f.Fuzz.Driver.shrunk with
      | None -> ()
      | Some o ->
          Format.printf
            "@.shrunk (%d simplification(s), %d execution(s)):@.%a@."
            o.Fuzz.Shrink.steps o.Fuzz.Shrink.executions Fuzz.Scenario.pp
            o.Fuzz.Shrink.shrunk);
      if Fuzz.Exec.passed f.Fuzz.Driver.report then 0 else 1
  | None ->
      let progress = progress_of verbose in
      if smoke then begin
        let found = ref [] in
        let timeouts = ref 0 in
        List.iter
          (fun seed ->
            let f = Fuzz.Driver.run_seed ~shrink seed in
            timeouts := !timeouts + f.Fuzz.Driver.report.Fuzz.Exec.handshake_timeouts;
            if not (Fuzz.Exec.passed f.Fuzz.Driver.report) then
              found := f :: !found;
            match progress with
            | Some p -> p seed f.Fuzz.Driver.report
            | None -> ())
          Fuzz.Driver.smoke_corpus;
        summarise
          {
            Fuzz.Driver.runs = List.length Fuzz.Driver.smoke_corpus;
            found = List.rev !found;
            handshake_timeouts = !timeouts;
          }
      end
      else if matrix then
        let per_cell =
          max 1 (seeds / List.length Fuzz.Driver.matrix_cells)
        in
        summarise
          (Fuzz.Driver.matrix ~base ~shrink ?progress ~seeds_per_cell:per_cell
             ())
      else summarise (Fuzz.Driver.soak ~base ~shrink ?progress ~seeds ())

let cmd =
  let doc =
    "Deterministic scenario fuzzing of the versatile transport protocol."
  in
  Cmd.v
    (Cmd.info "vtp_fuzz" ~doc)
    Term.(
      const run $ seeds $ base $ replay $ shrink $ matrix $ smoke $ verbose)

let () = exit (Cmd.eval' cmd)
