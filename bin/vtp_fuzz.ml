(* CLI: the deterministic scenario fuzzer.

   Examples:
     vtp_fuzz --seeds 200            # soak seeds 1..200
     vtp_fuzz --seeds 200 --jobs 8   # same soak, fanned over 8 domains
     vtp_fuzz --seeds 200 --shrink   # and minimise any failure found
     vtp_fuzz --replay 1337          # re-run one seed, full report
     vtp_fuzz --matrix --seeds 60    # 10 seeds per profile/mode cell
     vtp_fuzz --smoke                # the fixed 25-seed corpus (@fuzz-smoke)
     vtp_fuzz --smoke --digest       # one report digest per seed (@par-smoke)
     vtp_fuzz --band handover --seeds 25   # mobility band (@handover-smoke)

   Every run is a pure function of its seeds — whatever --jobs is: the
   per-seed executions fan out over an Engine.Pool but reporting is in
   seed order, so the same invocation prints the same bytes at --jobs 1
   and --jobs N.  Exit code 0 iff no scenario failed. *)

open Cmdliner

let seeds =
  Arg.(
    value & opt int 50
    & info [ "seeds" ] ~docv:"N"
        ~doc:"Number of scenarios to run (with $(b,--matrix): total across \
              the six cells).")

let base =
  Arg.(
    value & opt int 1
    & info [ "base" ] ~docv:"SEED" ~doc:"First seed of the sweep.")

let replay =
  Arg.(
    value & opt (some int) None
    & info [ "replay" ] ~docv:"SEED"
        ~doc:"Re-run a single seed and print its full report.")

let shrink =
  Arg.(
    value & flag
    & info [ "shrink" ]
        ~doc:"Greedily minimise every failing scenario before reporting it.")

let matrix =
  Arg.(
    value & flag
    & info [ "matrix" ]
        ~doc:"Sweep the six profile/reliability compositions instead of \
              free-sampling profiles.")

let smoke =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:"Run the fixed 25-seed corpus (what dune's @fuzz-smoke alias \
              executes).")

let digest =
  Arg.(
    value & flag
    & info [ "digest" ]
        ~doc:"Print one $(i,seed report-digest) line per scenario instead of \
              the campaign summary; dune's @par-smoke alias diffs this \
              output across --jobs values.")

let band =
  Arg.(
    value
    & opt
        (enum
           [
             ("std", `Std); ("lfn", `Lfn); ("handover", `Handover);
             ("trunk", `Trunk);
           ])
        `Std
    & info [ "band" ] ~docv:"BAND"
        ~doc:"Generation band: $(b,std) (classic short paths), $(b,lfn) \
              (long-fat networks), $(b,handover) (single flow migrating \
              across a heterogeneous WiFi/cellular/satellite path triple) or \
              $(b,trunk) (10..1000 user micro-flows multiplexed over one \
              gTFRC connection).")

let jobs =
  Arg.(
    value & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for the fan-out (default $(b,VTP_JOBS) if set, \
              else the recommended domain count).")

let verbose =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Print a line per scenario as it runs.")

let print_found (f : Fuzz.Driver.found) =
  Format.printf "@.--- FAILURE ---@.%a@." Fuzz.Exec.pp_report f.Fuzz.Driver.report;
  (match f.Fuzz.Driver.shrunk with
  | None -> ()
  | Some o ->
      Format.printf
        "@.shrunk (%d simplification(s), %d execution(s)):@.%a@."
        o.Fuzz.Shrink.steps o.Fuzz.Shrink.executions Fuzz.Scenario.pp
        o.Fuzz.Shrink.shrunk);
  Format.printf "replay: vtp_fuzz --replay %d@."
    f.Fuzz.Driver.report.Fuzz.Exec.scenario.Fuzz.Scenario.seed

let progress_of ~digest ~verbose =
  if digest then
    Some
      (fun seed (r : Fuzz.Exec.report) ->
        Format.printf "%d %s@." seed (Fuzz.Driver.digest r))
  else if verbose then
    Some
      (fun seed (r : Fuzz.Exec.report) ->
        Format.printf "%s %s@."
          (if Fuzz.Exec.passed r then "pass" else "FAIL")
          (Fuzz.Scenario.summary r.Fuzz.Exec.scenario);
        ignore seed)
  else None

let summarise ~digest (s : Fuzz.Driver.soak) =
  if not digest then begin
    Format.printf
      "@.%d scenario(s), %d failing, %d benign handshake timeout(s)@."
      s.Fuzz.Driver.runs
      (List.length s.Fuzz.Driver.found)
      s.Fuzz.Driver.handshake_timeouts;
    List.iter print_found s.Fuzz.Driver.found
  end;
  if s.Fuzz.Driver.found = [] then 0 else 1

let run seeds base band replay shrink matrix smoke digest jobs verbose =
  match replay with
  | Some seed ->
      let f =
        Fuzz.Driver.run_scenario ~shrink
          (Fuzz.Scenario.generate_in ~band ~seed)
      in
      if digest then
        Format.printf "%d %s@." seed (Fuzz.Driver.digest f.Fuzz.Driver.report)
      else begin
        Format.printf "%a@." Fuzz.Exec.pp_report f.Fuzz.Driver.report;
        match f.Fuzz.Driver.shrunk with
        | None -> ()
        | Some o ->
            Format.printf
              "@.shrunk (%d simplification(s), %d execution(s)):@.%a@."
              o.Fuzz.Shrink.steps o.Fuzz.Shrink.executions Fuzz.Scenario.pp
              o.Fuzz.Shrink.shrunk
      end;
      if Fuzz.Exec.passed f.Fuzz.Driver.report then 0 else 1
  | None ->
      let progress = progress_of ~digest ~verbose in
      if smoke then
        summarise ~digest
          (Fuzz.Driver.run_seeds ~band ~shrink ?progress ?jobs
             Fuzz.Driver.smoke_corpus)
      else if matrix then
        let per_cell =
          max 1 (seeds / List.length Fuzz.Driver.matrix_cells)
        in
        summarise ~digest
          (Fuzz.Driver.matrix ~base ~shrink ?progress ?jobs
             ~seeds_per_cell:per_cell ())
      else
        summarise ~digest
          (Fuzz.Driver.soak ~base ~band ~shrink ?progress ?jobs ~seeds ())

let cmd =
  let doc =
    "Deterministic scenario fuzzing of the versatile transport protocol."
  in
  Cmd.v
    (Cmd.info "vtp_fuzz" ~doc)
    Term.(
      const run $ seeds $ base $ band $ replay $ shrink $ matrix $ smoke
      $ digest $ jobs $ verbose)

let () = exit (Cmd.eval' cmd)
