(* CLI: the flight-recorder trace tool.

   Replays golden-corpus entries (or any fuzz seed) with the flight
   recorder live and serialises the result: canonical text, digest, or
   qlog-style JSON.  Also diffs two canonical traces and regenerates /
   checks the committed corpus under test/golden/.

   Examples:
     vtp_trace --list
     vtp_trace --run light_headline --digest
     vtp_trace --run af_headline --sched heap --export af.trace
     vtp_trace --seed 123 --json out.qlog
     vtp_trace --diff a.trace b.trace
     vtp_trace --regen test/golden
     vtp_trace --check test/golden
     vtp_trace --check test/golden --jobs 8   # parallel replay, same output *)

open Cmdliner

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let list_flag =
  Arg.(value & flag & info [ "list" ] ~doc:"List the golden corpus and exit.")

let run_name =
  Arg.(
    value
    & opt (some string) None
    & info [ "run" ] ~docv:"NAME" ~doc:"Replay this golden-corpus entry.")

let seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Replay the fuzz scenario generated from this seed.")

let sched =
  Arg.(
    value
    & opt (enum [ ("wheel", `Wheel); ("heap", `Heap) ]) `Wheel
    & info [ "sched" ] ~docv:"BACKEND"
        ~doc:"Event-queue backend: $(b,wheel) (default) or $(b,heap).")

let export =
  Arg.(
    value
    & opt (some string) None
    & info [ "export" ] ~docv:"FILE" ~doc:"Write the canonical trace to FILE.")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write a qlog-style JSON export to FILE.")

let digest =
  Arg.(
    value & flag
    & info [ "digest" ]
        ~doc:"Print only the canonical trace digest (MD5 hex).")

let diff =
  Arg.(
    value
    & opt (some (pair ~sep:',' string string)) None
    & info [ "diff" ] ~docv:"A,B"
        ~doc:
          "Compare two canonical trace files and report the first \
           divergent line (exit 1 on mismatch).")

let diff_pos =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"FILE" ~doc:"Files for $(b,--diff) (alternative to A,B).")

let regen =
  Arg.(
    value
    & opt (some string) None
    & info [ "regen" ] ~docv:"DIR"
        ~doc:"Regenerate every corpus trace into DIR/<name>.trace.")

let check =
  Arg.(
    value
    & opt (some string) None
    & info [ "check" ] ~docv:"DIR"
        ~doc:
          "Replay every corpus entry and compare against DIR/<name>.trace \
           (exit 1 on any mismatch).")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for $(b,--regen)/$(b,--check) replay (default \
              $(b,VTP_JOBS) if set, else the recommended domain count).  \
              Output is identical at any value.")

let do_diff a b =
  let ta = read_file a and tb = read_file b in
  match Trace.Export.diff ta tb with
  | None ->
      Format.printf "traces identical (%s)@."
        (Trace.Export.digest_of_string ta);
      `Ok ()
  | Some d ->
      Format.printf "%a" Trace.Export.pp_divergence d;
      exit 1

let warn_failed (e : Fuzz.Golden.entry) report =
  if not (Fuzz.Exec.passed report) then
    Format.eprintf "warning: %s did not pass its oracles:@.%a@." e.name
      Fuzz.Exec.pp_report report

let capture_entry ~sched (e : Fuzz.Golden.entry) =
  let report, recorder = Fuzz.Golden.capture ~sched e in
  warn_failed e report;
  recorder

(* Replay the whole corpus over the pool; entries come back — and the
   oracle warnings fire — in corpus order, so --regen/--check output is
   identical at any --jobs. *)
let capture_corpus ~sched ~jobs =
  let entries = Array.of_list Fuzz.Golden.corpus in
  let captured =
    Engine.Pool.with_pool ?jobs (fun pool ->
        Engine.Pool.map pool (fun e -> Fuzz.Golden.capture ~sched e) entries)
  in
  Array.map2
    (fun e (report, recorder) ->
      warn_failed e report;
      (e, recorder))
    entries captured

let do_regen ~sched ~jobs dir =
  Array.iter
    (fun ((e : Fuzz.Golden.entry), recorder) ->
      let text = Trace.Export.canonical recorder in
      let path = Filename.concat dir (e.name ^ ".trace") in
      write_file path text;
      Format.printf "%-18s %s  (%d events)@." e.name
        (Trace.Export.digest_of_string text)
        (Trace.Recorder.events recorder))
    (capture_corpus ~sched ~jobs);
  `Ok ()

let do_check ~sched ~jobs dir =
  let bad = ref 0 in
  Array.iter
    (fun ((e : Fuzz.Golden.entry), recorder) ->
      let path = Filename.concat dir (e.name ^ ".trace") in
      if not (Sys.file_exists path) then begin
        incr bad;
        Format.printf "%-18s MISSING (%s)@." e.name path
      end
      else begin
        let want = read_file path in
        let got = Trace.Export.canonical recorder in
        match Trace.Export.diff want got with
        | None -> Format.printf "%-18s ok@." e.name
        | Some d ->
            incr bad;
            Format.printf "%-18s MISMATCH@.%a" e.name
              Trace.Export.pp_divergence d
      end)
    (capture_corpus ~sched ~jobs);
  if !bad > 0 then exit 1;
  `Ok ()

let run list_only run_name seed sched export json digest diff diff_pos regen
    check jobs =
  if list_only then begin
    List.iter
      (fun (e : Fuzz.Golden.entry) ->
        Format.printf "%-18s %s@." e.Fuzz.Golden.name e.Fuzz.Golden.descr)
      Fuzz.Golden.corpus;
    `Ok ()
  end
  else
    match (diff, diff_pos, regen, check) with
    | Some (a, b), _, _, _ -> do_diff a b
    | None, [ a; b ], _, _ -> do_diff a b
    | None, _, Some dir, _ -> do_regen ~sched ~jobs dir
    | None, _, None, Some dir -> do_check ~sched ~jobs dir
    | None, _, None, None -> (
        let entry =
          match (run_name, seed) with
          | Some name, _ -> Fuzz.Golden.find name
          | None, Some seed ->
              Some
                {
                  Fuzz.Golden.name = Printf.sprintf "seed_%d" seed;
                  descr = "generated scenario";
                  scenario = Fuzz.Scenario.generate ~seed;
                }
          | None, None -> None
        in
        match entry with
        | None ->
            `Error
              ( true,
                "nothing to do: pass --run NAME or --seed N (or --list, \
                 --diff, --regen, --check)" )
        | Some e ->
            let recorder = capture_entry ~sched e in
            let text = Trace.Export.canonical recorder in
            (match json with
            | Some path ->
                write_file path
                  (Stats.Json.to_string
                     (Trace.Export.to_json
                        ~meta:[ ("entry", Stats.Json.String e.name) ]
                        recorder))
            | None -> ());
            (match export with
            | Some path -> write_file path text
            | None -> ());
            if digest then
              Format.printf "%s@." (Trace.Export.digest_of_string text)
            else if export = None && json = None then print_string text;
            `Ok ())

let cmd =
  let doc = "Flight-recorder traces: replay, export, digest, diff, corpus." in
  Cmd.v
    (Cmd.info "vtp_trace" ~doc)
    Term.(
      ret
        (const run $ list_flag $ run_name $ seed $ sched $ export $ json
       $ digest $ diff $ diff_pos $ regen $ check $ jobs))

let () = exit (Cmd.eval cmd)
