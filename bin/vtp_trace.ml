(* CLI: run a short scenario with packet tracing at both ends of the
   bottleneck and dump the event trace — the debugging view of the
   simulator.

   Example:
     vtp_trace --proto light --loss 0.05 --duration 1.5 --events 80 *)

open Cmdliner

let duration =
  Arg.(value & opt float 1.0 & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")

let loss =
  Arg.(value & opt float 0.02 & info [ "loss" ] ~docv:"P" ~doc:"Bernoulli loss rate.")

let events =
  Arg.(value & opt int 60 & info [ "events" ] ~docv:"N" ~doc:"Trace lines to print (newest).")

let light =
  Arg.(value & flag & info [ "light" ] ~doc:"Use the QTP_light profile instead of plain TFRC.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let run duration loss events light seed =
  let sim = Engine.Sim.create ~seed () in
  let rng = Engine.Sim.split_rng sim in
  let tracer = Netsim.Tracer.create ~sim ~capacity:events () in
  let forward =
    Netsim.Topology.spec ~rate_bps:10e6 ~delay:0.02
      ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:50)
      ~loss:(fun () ->
        if loss > 0.0 then
          Netsim.Loss_model.bernoulli ~p:loss ~rng:(Engine.Rng.split rng)
        else Netsim.Loss_model.none)
      ()
  in
  let topo = Netsim.Topology.duplex_path ~sim ~forward () in
  let ep = Netsim.Topology.endpoint topo 0 in
  (* Tap the frame stream on both directions of the endpoint. *)
  let fwd = ep.Netsim.Topology.to_receiver in
  let rev = ep.Netsim.Topology.to_sender in
  let ep =
    {
      ep with
      Netsim.Topology.to_receiver = Netsim.Tracer.tap tracer "data->" fwd;
      to_sender = Netsim.Tracer.tap tracer "<-fbk " rev;
    }
  in
  let offer =
    if light then Qtp.Profile.qtp_light () else Qtp.Profile.qtp_tfrc ()
  in
  let responder =
    if light then Qtp.Profile.mobile_receiver () else Qtp.Profile.anything ()
  in
  let conn =
    Qtp.Connection.create ~sim ~endpoint:ep
      (Qtp.Connection.config ~initial_rtt:0.2
         (Qtp.Profile.agreed_exn offer responder))
  in
  Engine.Sim.run ~until:duration sim;
  Netsim.Tracer.dump tracer Format.std_formatter;
  Format.printf
    "@.%d events total; window above shows the last %d.@.sent=%d delivered=%d p=%.4f@."
    (Netsim.Tracer.count tracer) events
    (Qtp.Connection.data_sent conn)
    (Qtp.Connection.delivered conn)
    (Qtp.Connection.sender_loss_estimate conn)

let cmd =
  let doc = "Dump a frame-level trace of a short VTP run." in
  Cmd.v (Cmd.info "vtp_trace" ~doc)
    Term.(const run $ duration $ loss $ events $ light $ seed)

let () = exit (Cmd.eval cmd)
