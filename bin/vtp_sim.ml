(* CLI: run one ad-hoc transport-over-simulated-path scenario.

   Examples:
     vtp_sim --proto tfrc --loss 0.02
     vtp_sim --proto light --reliability partial --loss 0.05 --burstiness 0.7
     vtp_sim --proto af --g 3e6 --duration 30
     vtp_sim --proto tcp --rate 5e6 --delay 0.06
     vtp_sim --proto tfrc --loss 0.02 --seeds 20 --jobs 8   # seed sweep *)

open Cmdliner

type proto = P_tcp | P_tfrc | P_light | P_af | P_full

let proto_conv =
  let parse = function
    | "tcp" -> Ok P_tcp
    | "tfrc" -> Ok P_tfrc
    | "light" -> Ok P_light
    | "af" -> Ok P_af
    | "full" -> Ok P_full
    | s -> Error (`Msg ("unknown protocol: " ^ s))
  in
  let print fmt p =
    Format.pp_print_string fmt
      (match p with
      | P_tcp -> "tcp"
      | P_tfrc -> "tfrc"
      | P_light -> "light"
      | P_af -> "af"
      | P_full -> "full")
  in
  Arg.conv (parse, print)

let rel_conv =
  let parse = function
    | "none" -> Ok Qtp.Capabilities.R_none
    | "partial" -> Ok Qtp.Capabilities.R_partial
    | "full" -> Ok Qtp.Capabilities.R_full
    | s -> Error (`Msg ("unknown reliability: " ^ s))
  in
  Arg.conv (parse, fun fmt m -> Qtp.Capabilities.pp_mode fmt m)

let proto =
  Arg.(value & opt proto_conv P_tfrc
       & info [ "proto" ] ~docv:"PROTO" ~doc:"tcp | tfrc | light | af | full")

let rate =
  Arg.(value & opt float 10e6 & info [ "rate" ] ~docv:"BPS" ~doc:"Link rate (b/s).")

let delay =
  Arg.(value & opt float 0.04 & info [ "delay" ] ~docv:"S" ~doc:"One-way delay (s).")

let loss =
  Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc:"Stationary loss rate.")

let burstiness =
  Arg.(value & opt float 0.0
       & info [ "burstiness" ] ~docv:"B"
           ~doc:"0 = random (Bernoulli); >0 = Gilbert-Elliott burstiness.")

let g =
  Arg.(value & opt float 2e6 & info [ "g" ] ~docv:"BPS" ~doc:"AF target rate for --proto af.")

let duration =
  Arg.(value & opt float 30.0 & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let seeds =
  Arg.(
    value & opt int 1
    & info [ "seeds" ] ~docv:"N"
        ~doc:"Run the same scenario on N consecutive seeds (starting at \
              $(b,--seed)) and print one line per seed, in seed order.")

let jobs =
  Arg.(
    value & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for the $(b,--seeds) sweep (default \
              $(b,VTP_JOBS) if set, else the recommended domain count).  \
              Output is identical at any value.")

let reliability =
  Arg.(value & opt rel_conv Qtp.Capabilities.R_none
       & info [ "reliability" ] ~docv:"MODE" ~doc:"none | partial | full (for --proto light).")

(* One scenario on one seed, rendered to a string so a --seeds sweep can
   run scenarios concurrently and still print in seed order. *)
let render_one ~proto ~rate ~delay ~loss ~burstiness ~g ~duration ~reliability
    ~seed =
  let loss_of rng =
    if loss <= 0.0 then Netsim.Loss_model.none
    else if burstiness <= 0.0 then Netsim.Loss_model.bernoulli ~p:loss ~rng
    else Experiments.Common.gilbert ~loss ~burstiness rng
  in
  match proto with
  | P_af ->
      let r =
        Experiments.Af_scenario.run ~seed ~g_mbps:(g /. 1e6)
          ~proto:Experiments.Af_scenario.Qtp_af ()
      in
      Format.asprintf
        "QTP_AF on the AF dumbbell: achieved %.2f Mb/s (%.0f%% of g), retx %d@."
        (r.Experiments.Af_scenario.achieved_wire_bps /. 1e6)
        (100.0 *. r.Experiments.Af_scenario.achieved_wire_bps /. g)
        r.Experiments.Af_scenario.retransmissions
  | P_tcp ->
      let sim = Engine.Sim.create ~seed () in
      let rng = Engine.Sim.split_rng sim in
      let forward =
        Netsim.Topology.spec ~rate_bps:rate ~delay
          ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:50)
          ~loss:(fun () -> loss_of (Engine.Rng.split rng))
          ()
      in
      let topo = Netsim.Topology.duplex_path ~sim ~forward () in
      let flow =
        Tcp.Flow.create ~sim ~endpoint:(Netsim.Topology.endpoint topo 0) ()
      in
      Engine.Sim.run ~until:duration sim;
      let s = Tcp.Flow.sender flow in
      Format.asprintf
        "TCP: goodput %.2f Mb/s over [1s,%gs); sent %d, retx %d, timeouts %d, \
         cwnd %.1f@."
        (Tcp.Flow.goodput_bps flow ~from_:1.0 ~until:duration /. 1e6)
        duration
        (Tcp.Tcp_sender.segments_sent s)
        (Tcp.Tcp_sender.retransmits s)
        (Tcp.Tcp_sender.timeouts s)
        (Tcp.Tcp_sender.cwnd s)
  | P_tfrc | P_light | P_full ->
      let sim = Engine.Sim.create ~seed () in
      let rng = Engine.Sim.split_rng sim in
      let forward =
        Netsim.Topology.spec ~rate_bps:rate ~delay
          ~qdisc:(fun () -> Netsim.Qdisc.droptail ~capacity_pkts:50)
          ~loss:(fun () -> loss_of (Engine.Rng.split rng))
          ()
      in
      let topo = Netsim.Topology.duplex_path ~sim ~forward () in
      let offer, responder =
        match proto with
        | P_tfrc -> (Qtp.Profile.qtp_tfrc (), Qtp.Profile.anything ())
        | P_full -> (Qtp.Profile.qtp_full (), Qtp.Profile.anything ())
        | P_light | P_tcp | P_af ->
            ( Qtp.Profile.qtp_light ~reliability:[ reliability ] (),
              Qtp.Profile.mobile_receiver () )
      in
      let agreed = Qtp.Profile.agreed_exn offer responder in
      let conn =
        Qtp.Connection.create ~sim
          ~endpoint:(Netsim.Topology.endpoint topo 0)
          (Qtp.Connection.config ~initial_rtt:0.2 agreed)
      in
      Engine.Sim.run ~until:duration sim;
      Format.asprintf
        "%a: throughput %.2f Mb/s over [1s,%gs); sent %d, retx %d, delivered \
         %d, skipped %d, p=%.4f@."
        Qtp.Capabilities.pp_agreed agreed
        (Stats.Series.rate_bps (Qtp.Connection.arrivals conn) ~from_:1.0
           ~until:duration
        /. 1e6)
        duration
        (Qtp.Connection.data_sent conn)
        (Qtp.Connection.retransmissions conn)
        (Qtp.Connection.delivered conn)
        (Qtp.Connection.skipped conn)
        (Qtp.Connection.sender_loss_estimate conn)

let run proto rate delay loss burstiness g duration seed seeds jobs reliability
    =
  let render seed =
    render_one ~proto ~rate ~delay ~loss ~burstiness ~g ~duration ~reliability
      ~seed
  in
  if seeds <= 1 then print_string (render seed)
  else
    Engine.Pool.with_pool ?jobs (fun pool ->
        Engine.Pool.tabulate pool seeds (fun i -> render (seed + i)))
    |> Array.iteri (fun i s -> Printf.printf "[seed %d] %s" (seed + i) s)

let cmd =
  let doc = "Run one transport scenario on the VTP network simulator." in
  Cmd.v (Cmd.info "vtp_sim" ~doc)
    Term.(
      const run $ proto $ rate $ delay $ loss $ burstiness $ g $ duration
      $ seed $ seeds $ jobs $ reliability)

let () = exit (Cmd.eval cmd)
