(* CLI: lint + structural analysis of the protocol sources.

   Examples:
     vtp_lint lib bin                       # scan (the default roots)
     vtp_lint --baseline analysis/BASELINE.json lib bin bench
     vtp_lint --json report.sarif lib       # SARIF-style JSON report
     vtp_lint --update-baseline --baseline analysis/BASELINE.json lib bin
     vtp_lint --rule hot-closure lib        # one rule only
     vtp_lint --explain hashtbl-order       # rationale + offender/fix
     vtp_lint --list-rules

   Exit codes: 0 clean (no new gating findings), 1 new findings,
   2 usage error / missing directory / malformed baseline. *)

open Cmdliner

let list_rules =
  Arg.(value & flag & info [ "list-rules" ] ~doc:"List the rule table and exit.")

let warnings_only_exit =
  Arg.(
    value & flag
    & info [ "warnings" ]
        ~doc:"Also fail (exit 1) on warning-severity findings.")

let jobs =
  Arg.(
    value & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for the per-file scan (default $(b,VTP_JOBS) \
              if set, else the recommended domain count).  Output is \
              identical at any value.")

let json_out =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write a SARIF-style JSON report to $(docv) ($(b,-) for \
              stdout, suppressing the text report).")

let baseline_file =
  Arg.(
    value & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:"Suppress (but keep tracking) the findings recorded in \
              $(docv); only new findings gate.  A missing or malformed \
              baseline exits 2.")

let update_baseline =
  Arg.(
    value & flag
    & info [ "update-baseline" ]
        ~doc:"Rewrite the $(b,--baseline) file from the current scan and \
              exit 0.")

let rule_filter =
  Arg.(
    value & opt_all string []
    & info [ "rule" ] ~docv:"ID"
        ~doc:"Restrict the scan to this rule id (repeatable).")

let explain =
  Arg.(
    value & opt (some string) None
    & info [ "explain" ] ~docv:"ID"
        ~doc:"Print the rule's rationale and an offender/fix example \
              pair, then exit.")

let roots =
  Arg.(
    value
    & pos_all string [ "lib"; "bin" ]
    & info [] ~docv:"DIR" ~doc:"Directories to scan (default: lib bin).")

(* ------------------------------------------------------------------ *)

let print_rule_line id severity doc dirs allow =
  Format.printf "%-18s %-8s %s@." id severity doc;
  (match dirs with
  | [] -> ()
  | dirs -> Format.printf "%-18s   scope: %s@." "" (String.concat " " dirs));
  match allow with
  | [] -> ()
  | allow -> Format.printf "%-18s   allow: %s@." "" (String.concat " " allow)

let do_list_rules () =
  List.iter
    (fun (r : Analysis.Lint.rule) ->
      print_rule_line r.Analysis.Lint.id
        (Analysis.Lint.severity_name r.Analysis.Lint.severity)
        r.Analysis.Lint.doc r.Analysis.Lint.dirs r.Analysis.Lint.allow)
    Analysis.Lint.rules;
  List.iter
    (fun (p : Analysis.Pass.t) ->
      print_rule_line p.Analysis.Pass.id "error"
        (p.Analysis.Pass.family ^ ": " ^ p.Analysis.Pass.doc)
        p.Analysis.Pass.dirs p.Analysis.Pass.allow)
    Analysis.Check.passes;
  0

let print_explain ~id ~doc ~rationale ~bad ~good =
  Format.printf "%s — %s@.@.%s@.@.Offender:@.  %s@.@.Fix:@.  %s@." id doc
    rationale bad good

let do_explain rid =
  match Analysis.Check.find_pass rid with
  | Some p ->
      print_explain ~id:p.Analysis.Pass.id
        ~doc:(p.Analysis.Pass.family ^ ": " ^ p.Analysis.Pass.doc)
        ~rationale:p.Analysis.Pass.rationale ~bad:p.Analysis.Pass.bad
        ~good:p.Analysis.Pass.good;
      0
  | None -> (
      match
        List.find_opt
          (fun (r : Analysis.Lint.rule) -> r.Analysis.Lint.id = rid)
          Analysis.Lint.rules
      with
      | Some r ->
          print_explain ~id:r.Analysis.Lint.id
            ~doc:("lint: " ^ r.Analysis.Lint.doc)
            ~rationale:r.Analysis.Lint.rationale ~bad:r.Analysis.Lint.bad
            ~good:r.Analysis.Lint.good;
          0
      | None ->
          Format.eprintf
            "vtp_lint: unknown rule %s (try --list-rules)@." rid;
          2)

let rule_meta () =
  List.map
    (fun (r : Analysis.Lint.rule) ->
      (r.Analysis.Lint.id, r.Analysis.Lint.doc))
    Analysis.Lint.rules
  @ List.map
      (fun (p : Analysis.Pass.t) ->
        (p.Analysis.Pass.id, p.Analysis.Pass.doc))
      Analysis.Check.passes

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let run list_only strict jobs json_out baseline_file update_baseline
    rule_filter explain roots =
  match explain with
  | Some rid -> do_explain rid
  | None ->
      if list_only then do_list_rules ()
      else begin
        let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
        match missing with
        | d :: _ ->
            Format.eprintf "vtp_lint: no such directory: %s@." d;
            2
        | [] ->
            let lint_findings = Analysis.Lint.lint_tree ?jobs ~roots () in
            let check_findings = Analysis.Check.run_tree ?jobs ~roots () in
            let entries =
              Analysis.Report.sort
                (Analysis.Report.of_lint lint_findings
                @ Analysis.Report.of_check check_findings)
            in
            let entries =
              match rule_filter with
              | [] -> entries
              | rs ->
                  List.filter
                    (fun (e : Analysis.Report.entry) ->
                      List.mem e.Analysis.Report.rule rs)
                    entries
            in
            let gating_severity (e : Analysis.Report.entry) =
              strict || e.Analysis.Report.severity = "error"
            in
            if update_baseline then begin
              let path =
                Option.value baseline_file ~default:"analysis/BASELINE.json"
              in
              let tracked = List.filter gating_severity entries in
              Analysis.Baseline.save path tracked;
              Format.printf "vtp_lint: baseline updated: %d finding(s) -> %s@."
                (List.length tracked) path;
              0
            end
            else begin
              match
                match baseline_file with
                | None -> Ok (List.map (fun e -> (e, true)) entries)
                | Some p -> (
                    try
                      Ok
                        (Analysis.Baseline.classify
                           (Analysis.Baseline.load p)
                           entries)
                    with Analysis.Baseline.Malformed m -> Error (p, m))
              with
              | Error (p, m) ->
                  Format.eprintf "vtp_lint: malformed baseline %s: %s@." p m;
                  2
              | Ok classified ->
                  let json_to_stdout =
                    match json_out with Some "-" -> true | _ -> false
                  in
                  (match json_out with
                  | None -> ()
                  | Some dest ->
                      let doc =
                        Analysis.Report.sarif ~rules:(rule_meta ()) classified
                      in
                      let text = Stats.Json.to_string doc ^ "\n" in
                      if json_to_stdout then print_string text
                      else write_file dest text);
                  let new_gating =
                    List.filter
                      (fun (e, is_new) -> is_new && gating_severity e)
                      classified
                  in
                  if not json_to_stdout then begin
                    List.iter
                      (fun c ->
                        Format.printf "%a@." Analysis.Report.pp_entry c)
                      classified;
                    Format.printf
                      "vtp_lint: %d finding(s), %d baselined, %d gating@."
                      (List.length classified)
                      (List.length classified - List.length new_gating)
                      (List.length new_gating)
                  end;
                  if new_gating = [] then 0 else 1
            end
      end

let cmd =
  let doc =
    "Protocol-source lint and structural analysis: determinism, hot-path \
     allocation, protocol constants, API hygiene."
  in
  Cmd.v
    (Cmd.info "vtp_lint" ~doc)
    Term.(
      const run $ list_rules $ warnings_only_exit $ jobs $ json_out
      $ baseline_file $ update_baseline $ rule_filter $ explain $ roots)

let () = exit (Cmd.eval' cmd)
