(* CLI: lint the protocol sources.

   Examples:
     vtp_lint lib bin          # scan (the default roots)
     vtp_lint --list-rules     # the active rule table
     vtp_lint --warnings lib   # include warning-severity findings

   Output is machine readable (file:line: [rule-id] severity: message);
   the exit code is non-zero iff any error-severity finding exists, so
   the dune @lint alias can gate @runtest. *)

open Cmdliner

let list_rules =
  Arg.(value & flag & info [ "list-rules" ] ~doc:"List the rule table and exit.")

let warnings_only_exit =
  Arg.(
    value & flag
    & info [ "warnings" ]
        ~doc:"Also fail (exit 1) on warning-severity findings.")

let jobs =
  Arg.(
    value & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for the per-file scan (default $(b,VTP_JOBS) \
              if set, else the recommended domain count).  Output is \
              identical at any value.")

let roots =
  Arg.(
    value
    & pos_all string [ "lib"; "bin" ]
    & info [] ~docv:"DIR" ~doc:"Directories to scan (default: lib bin).")

let run list_only strict jobs roots =
  if list_only then begin
    List.iter
      (fun (r : Analysis.Lint.rule) ->
        Format.printf "%-16s %-8s %s@."
          r.Analysis.Lint.id
          (match r.Analysis.Lint.severity with
          | Analysis.Lint.Error -> "error"
          | Analysis.Lint.Warning -> "warning")
          r.Analysis.Lint.doc;
        (match r.Analysis.Lint.dirs with
        | [] -> ()
        | dirs -> Format.printf "%-16s   scope: %s@." "" (String.concat " " dirs));
        match r.Analysis.Lint.allow with
        | [] -> ()
        | allow ->
            Format.printf "%-16s   allow: %s@." "" (String.concat " " allow))
      Analysis.Lint.rules;
    0
  end
  else begin
    let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
    match missing with
    | d :: _ ->
        Format.eprintf "vtp_lint: no such directory: %s@." d;
        2
    | [] ->
        let findings = Analysis.Lint.lint_tree ?jobs ~roots () in
        List.iter
          (fun f -> Format.printf "%a@." Analysis.Lint.pp_finding f)
          findings;
        let errors = Analysis.Lint.errors findings in
        let gate = if strict then findings else errors in
        if gate = [] then begin
          Format.printf "vtp_lint: clean (%d finding(s), 0 gating)@."
            (List.length findings);
          0
        end
        else begin
          Format.printf "vtp_lint: %d finding(s), %d gating@."
            (List.length findings) (List.length gate);
          1
        end
  end

let cmd =
  let doc = "Protocol-source lint: determinism, comparators, interfaces." in
  Cmd.v
    (Cmd.info "vtp_lint" ~doc)
    Term.(const run $ list_rules $ warnings_only_exit $ jobs $ roots)

let () = exit (Cmd.eval' cmd)
